"""Hierarchical subcircuits and flattening.

The extraction flow produces several partial netlists (substrate macromodel,
interconnect RC networks, package, the circuit itself).  Each can be defined
once as a :class:`Subcircuit` with formal ports and instantiated — possibly
several times — into a parent circuit.  Instantiation flattens immediately:
internal nodes and element names get a per-instance prefix, port nodes are
mapped onto the parent's nets.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Mapping

from ..errors import NetlistError
from .circuit import Circuit
from .devices import MosfetElement, VaractorElement
from .elements import (
    Element,
    TwoTerminal,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
)
from .stamping import GROUND


@dataclass
class Subcircuit:
    """A reusable circuit template with named ports."""

    name: str
    ports: tuple[str, ...]
    circuit: Circuit

    def __post_init__(self) -> None:
        if len(set(self.ports)) != len(self.ports):
            raise NetlistError(f"subcircuit {self.name!r}: duplicate port names")
        known = set(self.circuit.nodes()) | {GROUND}
        for port in self.ports:
            if port not in known:
                raise NetlistError(
                    f"subcircuit {self.name!r}: port {port!r} is not a node of "
                    "the template circuit")

    def instantiate(self, parent: Circuit, instance_name: str,
                    connections: Mapping[str, str]) -> list[Element]:
        """Flatten one instance of this subcircuit into ``parent``.

        ``connections`` maps port names to parent net names.  Internal nodes
        are renamed to ``instance_name.node``; element names to
        ``instance_name.element``.  Returns the list of elements added.
        """
        missing = set(self.ports) - set(connections)
        if missing:
            raise NetlistError(
                f"instance {instance_name!r} of {self.name!r}: "
                f"unconnected ports {sorted(missing)}")
        unknown = set(connections) - set(self.ports)
        if unknown:
            raise NetlistError(
                f"instance {instance_name!r} of {self.name!r}: "
                f"unknown ports {sorted(unknown)}")

        def map_node(node: str) -> str:
            if node == GROUND:
                return GROUND
            if node in connections:
                return connections[node]
            return f"{instance_name}.{node}"

        added: list[Element] = []
        for element in self.circuit:
            clone = copy.copy(element)
            clone.name = f"{instance_name}.{element.name}"
            _remap_element_nodes(clone, map_node)
            parent.add(clone)
            added.append(clone)
        return added


def _remap_element_nodes(element: Element, map_node) -> None:
    """Rewrite an element's node attributes through ``map_node``."""
    if isinstance(element, (VoltageControlledCurrentSource,
                            VoltageControlledVoltageSource)):
        element.node_p = map_node(element.node_p)
        element.node_n = map_node(element.node_n)
        element.ctrl_p = map_node(element.ctrl_p)
        element.ctrl_n = map_node(element.ctrl_n)
    elif isinstance(element, TwoTerminal):
        element.node_p = map_node(element.node_p)
        element.node_n = map_node(element.node_n)
    elif isinstance(element, MosfetElement):
        element.drain = map_node(element.drain)
        element.gate = map_node(element.gate)
        element.source = map_node(element.source)
        element.bulk = map_node(element.bulk)
    elif isinstance(element, VaractorElement):
        element.gate = map_node(element.gate)
        element.well = map_node(element.well)
        if element.substrate is not None:
            element.substrate = map_node(element.substrate)
    else:
        raise NetlistError(
            f"cannot remap nodes of element type {type(element).__name__}")
