"""Result containers of the reproduction experiments.

Each experiment (one per paper figure) returns a dataclass from this module
so that examples, tests and benchmarks consume the same structured output and
print the same rows the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.compare import CurveComparison
from ..vco.spurs import SpurResult


@dataclass
class NmosExperimentResult:
    """Section 3 / Figure 3: substrate-noise impact on the RF NMOS."""

    bias: np.ndarray                        #: gate/drain bias sweep (V)
    transfer_db: np.ndarray                 #: simulated substrate->output transfer (dB)
    reference_db: np.ndarray                #: reconstructed measured transfer (dB)
    comparison: CurveComparison
    substrate_division: float               #: v_backgate / v_SUB with real ground wire
    substrate_division_ideal_ground: float  #: same with an ideal (0 ohm) ground wire
    gmb: np.ndarray                         #: back-gate transconductance per bias (S)
    gds: np.ndarray                         #: output conductance per bias (S)
    crossover_frequencies: np.ndarray       #: junction-cap crossover per bias (Hz)
    ground_wire_resistance: float           #: extracted ground interconnect resistance (ohm)

    @property
    def division_increase_factor(self) -> float:
        """How much the ground-wire resistance increases the back-gate division."""
        if self.substrate_division_ideal_ground == 0:
            return float("inf")
        return self.substrate_division / self.substrate_division_ideal_ground

    def rows(self) -> list[dict[str, float]]:
        """Figure-3 style rows: bias, measured and simulated transfer."""
        return [
            {"bias_v": float(b), "reference_db": float(r), "simulated_db": float(s)}
            for b, r, s in zip(self.bias, self.reference_db, self.transfer_db)
        ]


@dataclass
class SpurSweepPoint:
    """One (V_tune, f_noise) point of the VCO spur analysis."""

    vtune: float
    noise_frequency: float
    spur: SpurResult

    @property
    def total_power_dbm(self) -> float:
        return self.spur.total_spur_power_dbm()


@dataclass
class VcoSpurSweepResult:
    """Figure 8: total spur power versus noise frequency, per tuning voltage."""

    noise_frequencies: np.ndarray
    vtune_values: tuple[float, ...]
    #: vtune -> array of total spur power (dBm) per noise frequency
    spur_power_dbm: dict[float, np.ndarray]
    #: vtune -> reference (reconstructed measurement) curve (dBm)
    reference_dbm: dict[float, np.ndarray]
    #: vtune -> CurveComparison against the reference
    comparisons: dict[float, CurveComparison]
    carrier_frequencies: dict[float, float]
    carrier_amplitudes: dict[float, float]
    points: list[SpurSweepPoint] = field(default_factory=list)

    def slope_db_per_decade(self, vtune: float) -> float:
        from ..analysis.compare import slope_per_decade

        return slope_per_decade(self.noise_frequencies, self.spur_power_dbm[vtune])

    def rows(self) -> list[dict[str, float]]:
        rows = []
        for vtune in self.vtune_values:
            for f, p, r in zip(self.noise_frequencies,
                               self.spur_power_dbm[vtune],
                               self.reference_dbm[vtune]):
                rows.append({"vtune_v": float(vtune),
                             "noise_frequency_hz": float(f),
                             "simulated_dbm": float(p),
                             "reference_dbm": float(r)})
        return rows


@dataclass
class ContributionResult:
    """Figure 9: per-entry contribution to the total spur power."""

    vtune: float
    noise_frequencies: np.ndarray
    #: entry name -> spur power contribution (dBm) per noise frequency
    contributions_dbm: dict[str, np.ndarray]
    total_dbm: np.ndarray
    #: entry name -> fitted slope in dB/decade
    slopes: dict[str, float] = field(default_factory=dict)
    #: entry name -> classified mechanism string
    mechanisms: dict[str, str] = field(default_factory=dict)

    def dominant_entry(self) -> str:
        """Entry with the highest average contribution."""
        averages = {name: float(np.mean(level))
                    for name, level in self.contributions_dbm.items()}
        return max(averages, key=averages.get)

    def gap_db(self, entry_a: str, entry_b: str) -> float:
        """Average level difference between two entries (positive if a > b)."""
        return float(np.mean(self.contributions_dbm[entry_a]
                             - self.contributions_dbm[entry_b]))

    def rows(self) -> list[dict[str, float | str]]:
        rows: list[dict[str, float | str]] = []
        for name, level in self.contributions_dbm.items():
            for f, p in zip(self.noise_frequencies, level):
                rows.append({"entry": name, "noise_frequency_hz": float(f),
                             "contribution_dbm": float(p)})
        return rows


@dataclass
class DesignStudyResult:
    """Figure 10: impact versus ground-interconnect resistance."""

    noise_frequencies: np.ndarray
    nominal_dbm: np.ndarray
    improved_dbm: np.ndarray
    nominal_ground_resistance: float
    improved_ground_resistance: float
    predicted_reduction_db: float        #: mean reduction over the sweep
    ideal_reduction_db: float            #: 20*log10(R_nominal / R_improved)

    def rows(self) -> list[dict[str, float]]:
        return [
            {"noise_frequency_hz": float(f), "nominal_dbm": float(a),
             "improved_dbm": float(b), "reduction_db": float(a - b)}
            for f, a, b in zip(self.noise_frequencies, self.nominal_dbm,
                               self.improved_dbm)
        ]


@dataclass
class MechanismReport:
    """Section 5: classification of coupling and modulation mechanisms."""

    slopes_db_per_decade: dict[str, float]
    mechanisms: dict[str, str]
    dominant_entry: str
    dominant_mechanism: str
