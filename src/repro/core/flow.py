"""The impact-simulation flow (the paper's Figure 2).

``run_extraction_flow`` executes the complete methodology on a layout cell:

1. substrate extraction (mesh + Kron reduction to a port macromodel),
2. interconnect extraction (wire resistance + substrate capacitance),
3. circuit extraction (device netlist from the annotated layout),
4. model merge (one impact netlist containing everything), including an
   optional package / probe model.

The result object keeps every intermediate model, the assembled
:class:`~repro.extraction.merge.ImpactNetlist` and the wall-clock spent in
each stage (the paper reports 20 minutes of extraction and 15 minutes of
simulation on 2005 hardware; the runtime benchmark reproduces the same
bookkeeping).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

from ..extraction.circuit_extractor import ExtractedCircuit, extract_circuit
from ..extraction.merge import ImpactNetlist, merge_models
from ..interconnect.extraction import InterconnectExtraction, extract_interconnect
from ..layout.cell import Cell
from ..obs import trace_span
from ..package.model import PackageModel
from ..simulator.linalg import SolverOptions, resolve_solver
from ..simulator.solver import SolverStats
from ..substrate.extraction import (
    SubstrateExtraction,
    SubstrateExtractionOptions,
    extract_substrate,
)
from ..technology.process import ProcessTechnology


@dataclass(frozen=True)
class FlowOptions:
    """Knobs of the extraction flow."""

    substrate: SubstrateExtractionOptions = field(
        default_factory=SubstrateExtractionOptions)
    #: node receiving the interconnect wire-to-substrate capacitances
    #: (``None`` = the first TAP port's net, i.e. the local ground ring).
    substrate_cap_reference: str | None = None
    #: linear-solver backend configuration.  Part of the studies
    #: extraction-cache key: flows solved by different backends / tolerances
    #: never share a cached extraction.
    solver: SolverOptions = field(default_factory=SolverOptions)


@dataclass
class FlowTimings:
    """Wall-clock seconds spent per stage of the flow.

    ``mesh_assembly`` and ``kron_reduction`` break the substrate stage down
    further (they are *included in* ``substrate_extraction``, not added on
    top), closing the historical blind spot where the dominant Kron solve
    was invisible in benchmark stage breakdowns.
    """

    substrate_extraction: float = 0.0
    interconnect_extraction: float = 0.0
    circuit_extraction: float = 0.0
    merge: float = 0.0
    #: sub-stages of ``substrate_extraction`` (not counted twice in totals)
    mesh_assembly: float = 0.0
    kron_reduction: float = 0.0

    @property
    def total_extraction(self) -> float:
        return (self.substrate_extraction + self.interconnect_extraction
                + self.circuit_extraction + self.merge)

    def as_dict(self) -> dict[str, float]:
        """Every stage (and sub-stage) with ``_seconds``-suffixed keys."""
        return {
            "substrate_seconds": self.substrate_extraction,
            "interconnect_seconds": self.interconnect_extraction,
            "circuit_seconds": self.circuit_extraction,
            "merge_seconds": self.merge,
            "mesh_assembly_seconds": self.mesh_assembly,
            "kron_reduction_seconds": self.kron_reduction,
        }


@dataclass
class FlowResult:
    """All artefacts produced by one run of the extraction flow."""

    cell: Cell
    technology: ProcessTechnology
    substrate: SubstrateExtraction
    interconnect: InterconnectExtraction
    devices: ExtractedCircuit
    impact: ImpactNetlist
    timings: FlowTimings
    #: solver counters of the extraction's mesh solve (backend, CG traffic)
    solver_stats: SolverStats | None = None

    def summary(self) -> dict[str, int | float | str]:
        """Headline numbers for logging / reports."""
        summary: dict[str, int | float | str] = {
            "cell": self.cell.name,
            "substrate_ports": len(self.substrate.ports),
            "substrate_mesh_nodes": self.substrate.mesh_nodes,
            "extracted_wires": len(self.interconnect.wires),
            "devices": len(self.devices.circuit),
            "impact_netlist_elements": len(self.impact.circuit),
            "impact_netlist_nodes": len(self.impact.circuit.nodes()),
            "extraction_seconds": round(self.timings.total_extraction, 3),
        }
        if self.solver_stats is not None:
            summary["solver_backend"] = self.solver_stats.backend
        return summary


def run_extraction_flow(cell: Cell, technology: ProcessTechnology,
                        package: PackageModel | None = None,
                        options: FlowOptions | None = None) -> FlowResult:
    """Run the paper's extraction flow on a layout cell."""
    options = options or FlowOptions()
    timings = FlowTimings()
    solver = resolve_solver(options.solver)

    with trace_span("flow.run", cell=cell.name):
        start = time.perf_counter()
        with trace_span("flow.substrate_extraction"):
            substrate = extract_substrate(cell, technology, options.substrate,
                                          solver=solver)
        timings.substrate_extraction = time.perf_counter() - start
        timings.mesh_assembly = substrate.timings.get("mesh_assembly", 0.0)
        timings.kron_reduction = substrate.timings.get("kron_reduction", 0.0)

        start = time.perf_counter()
        with trace_span("flow.interconnect_extraction"):
            interconnect = extract_interconnect(cell, technology)
        timings.interconnect_extraction = time.perf_counter() - start

        start = time.perf_counter()
        with trace_span("flow.circuit_extraction"):
            devices = extract_circuit(cell, technology)
        timings.circuit_extraction = time.perf_counter() - start

        start = time.perf_counter()
        with trace_span("flow.merge"):
            impact = merge_models(
                devices, interconnect, substrate, package=package,
                substrate_cap_reference=options.substrate_cap_reference)
        timings.merge = time.perf_counter() - start

    return FlowResult(cell=cell, technology=technology, substrate=substrate,
                      interconnect=interconnect, devices=devices,
                      impact=impact, timings=timings,
                      solver_stats=copy.copy(solver.stats))
