"""Sections 5-6 experiments: substrate-noise impact on the LC-tank VCO.

The :class:`VcoImpactAnalysis` class wires the extraction flow, the MNA
simulator and the analytical VCO model together:

* the impact netlist of the VCO test chip provides, through an AC analysis,
  the transfer ``h_sub,i(f)`` from the injected substrate tone to every noise
  entry (on-chip ground, NMOS back-gates, inductor, wells),
* the extracted devices at their DC operating point parameterise the
  analytical :class:`~repro.vco.lctank.LcTankVco` model, which provides the
  frequency sensitivities ``K_i`` and AM gains ``G_AM,i``,
* the paper's equations (2)/(3) then give the spur amplitudes at
  ``f_c +/- f_noise``.

On top of that, the module provides the figure-level experiments:

* :meth:`VcoImpactAnalysis.spur_sweep` — Figure 8 (total spur power versus
  noise frequency for several tuning voltages),
* :meth:`VcoImpactAnalysis.contributions` — Figure 9 (per-entry decomposition),
* :meth:`VcoImpactAnalysis.output_spectrum` — Figure 7 (spectrum-analyzer view
  of the VCO output with a 10 MHz tone in the substrate),
* :func:`ground_resistance_study` — Figure 10 (ground wires widened by 2x).

The grid-style experiments (:meth:`VcoImpactAnalysis.spur_sweep`,
:func:`ground_resistance_study`) run on the :mod:`repro.studies` sweep
engine: they accept an execution ``backend`` (serial or process-pool) and an
extraction ``cache`` shared across studies, while returning the same result
objects as before.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field

import numpy as np

from ..analysis.compare import classify_mechanism, slope_per_decade
from ..analysis.spectrum import Spectrum, compute_spectrum
from ..analysis.waveforms import SinusoidalNoise
from ..data import measurements
from ..errors import AnalysisError
from ..obs import trace_span
from ..layout.testchips import (
    NET_BIAS,
    NET_GROUND_PAD,
    NET_GROUND_RING,
    NET_OUT,
    NET_SUB,
    NET_SUPPLY,
    NET_TANK_N,
    NET_TANK_P,
    NET_TUNE,
    VcoLayoutSpec,
    backgate_node,
    make_vco_testchip,
)
from ..package.model import PackageModel
from ..simulator.dc import DcSolution, dc_operating_point
from ..simulator.linalg import resolve_solver
from ..simulator.transfer import TransferFunction, transfer_function
from ..technology.process import ProcessTechnology
from ..vco.lctank import LcTankVco, VcoDesign
from ..vco.sensitivity import (
    ENTRY_NMOS,
    VcoEntryCatalog,
    build_entry_catalog,
    entries_at_frequency,
    junction_capacitance_sensitivity,
)
from ..vco.spurs import SpurResult, compute_spurs, synthesize_output_waveform
from .flow import FlowOptions, FlowResult, run_extraction_flow
from .results import (
    ContributionResult,
    DesignStudyResult,
    MechanismReport,
    VcoSpurSweepResult,
)

#: External testbench node names.
NODE_SUB_DRIVE = "SUB_DRIVE"
NODE_SUB_EXT = "SUB_EXT"
NODE_VDD_EXT = "VDD_EXT"
NODE_TUNE_EXT = "VTUNE_EXT"
NODE_BIAS_EXT = "VBIAS_EXT"
NODE_OUT_EXT = "OUT_EXT"

#: Names of the cross-coupled NMOS devices and the tail device in the layout.
CROSS_COUPLED_NMOS = ("MN_left", "MN_right")
TAIL_NMOS = "MN_tail"


def _default_vco_flow_options() -> FlowOptions:
    """Mesh configuration used for the VCO test chip.

    A 56 x 56 lateral mesh keeps the box size around 13 um, fine enough to
    separate the device back-gates from the guard ring and the tap rows of
    the VCO core; EXPERIMENTS.md documents the sensitivity of the per-entry
    decomposition to this choice.
    """
    from ..substrate.extraction import SubstrateExtractionOptions

    return FlowOptions(substrate=SubstrateExtractionOptions(
        nx=56, ny=56, lateral_margin=60e-6))


@dataclass(frozen=True)
class VcoExperimentOptions:
    """Controls of the VCO impact experiments."""

    vtune_values: tuple[float, ...] = (0.0, 0.75, 1.5)
    noise_frequencies: tuple[float, ...] = tuple(
        float(f) for f in np.logspace(np.log10(100e3), np.log10(15e6), 12))
    injected_power_dbm: float = measurements.INJECTED_POWER_DBM
    source_impedance: float = 50.0
    supply_voltage: float = 1.8
    tail_bias_voltage: float = 0.75
    output_load: float = 50.0
    flow: FlowOptions = field(default_factory=_default_vco_flow_options)


class VcoImpactAnalysis:
    """Impact analysis of the VCO test chip (Figures 7, 8 and 9)."""

    def __init__(self, technology: ProcessTechnology,
                 spec: VcoLayoutSpec | None = None,
                 options: VcoExperimentOptions | None = None,
                 flow_result: FlowResult | None = None):
        self.technology = technology
        self.spec = spec or VcoLayoutSpec()
        self.options = options or VcoExperimentOptions()
        if flow_result is None:
            cell = make_vco_testchip(self.spec)
            flow_result = run_extraction_flow(cell, technology,
                                              options=self.options.flow)
        self.flow = flow_result
        self._operating_points: dict[float, DcSolution] = {}
        # One solver instance for every analysis of this object: the
        # reuse-pattern backend then shares its symbolic analysis across
        # V_tune points and noise frequencies (same testbench structure).
        self.solver = resolve_solver(self.options.flow.solver)
        self._noise = SinusoidalNoise(
            power_dbm=self.options.injected_power_dbm, frequency=1e6,
            impedance=self.options.source_impedance)

    # -- testbench ----------------------------------------------------------------

    def build_testbench(self, vtune: float):
        """Impact netlist plus probes, bias sources and the noise source."""
        circuit = copy.deepcopy(self.flow.impact.circuit)
        package = PackageModel.rf_probed({
            NET_GROUND_PAD: "0",
            NET_SUB: NODE_SUB_EXT,
            NET_SUPPLY: NODE_VDD_EXT,
            NET_TUNE: NODE_TUNE_EXT,
            NET_BIAS: NODE_BIAS_EXT,
            NET_OUT: NODE_OUT_EXT,
        })
        package.add_to_circuit(circuit)

        circuit.add_voltage_source("VDD_SRC", NODE_VDD_EXT, "0",
                                   self.options.supply_voltage)
        circuit.add_voltage_source("VTUNE_SRC", NODE_TUNE_EXT, "0", vtune)
        circuit.add_voltage_source("VBIAS_SRC", NODE_BIAS_EXT, "0",
                                   self.options.tail_bias_voltage)
        circuit.add_resistor("RLOAD_OUT", NODE_OUT_EXT, "0",
                             self.options.output_load)
        # Output buffer: the measured single-ended output follows one tank node.
        circuit.add_vcvs("EBUF_OUT", NET_OUT, "0", NET_TANK_P, "0", 1.0)
        circuit.add_voltage_source("VSUB_SRC", NODE_SUB_DRIVE, "0",
                                   self._noise.source_value())
        circuit.add_resistor("RSUB_SRC", NODE_SUB_DRIVE, NODE_SUB_EXT,
                             self.options.source_impedance)
        return circuit

    # -- VCO analytical model from the extracted devices -----------------------------

    def _tank_side_capacitance(self, op: DcSolution) -> float:
        """Fixed (non-varactor) capacitance loading one tank node."""
        total = 0.0
        for name in CROSS_COUPLED_NMOS + ("MP_left", "MP_right"):
            device_op = op.operating_point_of(name)
            # Each tank node sees one device's drain (cdb + cgd) and the other
            # device's gate (cgs + cgd); by symmetry half of each device's
            # relevant capacitance is attributed to each side.
            total += 0.5 * (device_op.cdb + 2.0 * device_op.cgd + device_op.cgs)
        total += self.flow.interconnect.total_capacitance_of(NET_TANK_P)
        return total

    def vco_model(self, operating_point: DcSolution) -> LcTankVco:
        """Build the analytical VCO model at a solved operating point."""
        inductor_model = self.flow.devices.inductors["L_tank"]
        varactor_model = self.flow.devices.varactors["C_var_left"].model
        tail_op = operating_point.operating_point_of(TAIL_NMOS)
        tank_cm = 0.5 * (operating_point.voltage(NET_TANK_P)
                         + operating_point.voltage(NET_TANK_N))
        ground_sensitivity = sum(
            junction_capacitance_sensitivity(
                self.flow.devices.mosfets[name].model,
                operating_point.operating_point_of(name).vgs,
                operating_point.operating_point_of(name).vds,
                operating_point.operating_point_of(name).vbs)
            for name in CROSS_COUPLED_NMOS)
        ground_referenced_cap = sum(
            operating_point.operating_point_of(name).cdb
            + operating_point.operating_point_of(name).csb
            for name in CROSS_COUPLED_NMOS)
        design = VcoDesign(
            tank_inductance=self.spec.tank_inductance,
            inductor=inductor_model,
            varactor=varactor_model,
            fixed_capacitance_per_side=self._tank_side_capacitance(operating_point),
            tail_current=max(abs(operating_point.branch_current("VDD_SRC")), 1e-3)
            if "VDD_SRC" in operating_point.circuit else 5e-3,
            supply_voltage=self.options.supply_voltage,
            tank_common_mode=tank_cm,
            tail_transconductance=tail_op.gm,
            ground_referenced_capacitance=ground_referenced_cap,
            ground_referenced_cap_sensitivity=ground_sensitivity)
        return LcTankVco(design)

    def entry_catalog(self, vco: LcTankVco, vtune: float) -> VcoEntryCatalog:
        """Noise-entry catalogue of the VCO test chip."""
        port_nodes = self.flow.impact.port_nodes
        nmos_names = list(CROSS_COUPLED_NMOS) + [TAIL_NMOS]
        backgates = {name: backgate_node(name) for name in nmos_names}
        # The back-gate entry captures the noise arriving at the device bulk
        # *beyond* the local ground bounce (which is already counted by the
        # ground-interconnect entry), so its reference is the ground ring.
        sources = {name: NET_GROUND_RING for name in nmos_names}
        op = self._operating_points[vtune]
        junction_sensitivities = {
            name: junction_capacitance_sensitivity(
                self.flow.devices.mosfets[name].model,
                op.operating_point_of(name).vgs,
                op.operating_point_of(name).vds,
                op.operating_point_of(name).vbs)
            for name in nmos_names}

        pmos_ports = [p for p in self.flow.substrate.ports
                      if p.kind.value == "well" and p.device
                      and p.device.startswith("MP_")]
        varactor_ports = [p for p in self.flow.substrate.ports
                          if p.kind.value == "well" and p.device
                          and p.device.startswith("C_var")]
        inductor_ports = self.flow.substrate.ports_of_net(NET_TANK_P)
        inductor_port = next((p for p in inductor_ports
                              if p.kind.value == "inductor"), None)

        return build_entry_catalog(
            vco, vtune,
            ground_node=NET_GROUND_RING,
            nmos_backgate_nodes=backgates,
            nmos_source_nodes=sources,
            nmos_junction_sensitivity=junction_sensitivities,
            inductor_port_node=(port_nodes[inductor_port.name]
                                if inductor_port else None),
            inductor_capacitance=(inductor_port.coupling_capacitance
                                  if inductor_port else 0.0),
            pmos_well_port_node=(port_nodes[pmos_ports[0].name]
                                 if pmos_ports else None),
            pmos_well_capacitance=sum(p.coupling_capacitance for p in pmos_ports),
            varactor_well_port_node=(port_nodes[varactor_ports[0].name]
                                     if varactor_ports else None),
            varactor_well_capacitance=sum(p.coupling_capacitance
                                          for p in varactor_ports))

    # -- core analysis -----------------------------------------------------------------

    def analyze(self, vtune: float,
                noise_frequencies: np.ndarray | None = None
                ) -> tuple[list[SpurResult], LcTankVco, VcoEntryCatalog,
                           TransferFunction]:
        """Full spur analysis at one tuning voltage.

        Returns one :class:`SpurResult` per noise frequency plus the VCO model,
        the entry catalogue and the raw transfer function used.
        """
        if noise_frequencies is None:
            noise_frequencies = np.asarray(self.options.noise_frequencies)
        noise_frequencies = np.asarray(noise_frequencies, dtype=float)

        # Simulation setup: testbench assembly plus the DC operating point
        # (the Newton solve) — the part of a corner that is not the AC sweep.
        with trace_span("sim.setup", vtune=vtune):
            circuit = self.build_testbench(vtune)
            operating_point = dc_operating_point(circuit, solver=self.solver)
            self._operating_points[vtune] = operating_point

            vco = self.vco_model(operating_point)
            catalog = self.entry_catalog(vco, vtune)
        with trace_span("sim.transfer_function",
                        points=int(noise_frequencies.size)):
            transfer = transfer_function(circuit, "VSUB_SRC",
                                         catalog.observation_nodes(),
                                         noise_frequencies,
                                         operating_point=operating_point,
                                         solver=self.solver)
        carrier_frequency = vco.oscillation_frequency(vtune)
        carrier_amplitude = vco.amplitude(vtune)
        noise_amplitude = self._noise.amplitude

        results = []
        for frequency in noise_frequencies:
            entries = entries_at_frequency(catalog, transfer, float(frequency))
            results.append(compute_spurs(entries, carrier_frequency,
                                         carrier_amplitude, noise_amplitude,
                                         float(frequency)))
        return results, vco, catalog, transfer

    # -- Figure 8 -------------------------------------------------------------------------

    def spur_campaign(self, vtune_values: tuple[float, ...] | None = None,
                      noise_frequencies: np.ndarray | None = None):
        """The (V_tune x noise frequency) sweep as a declarative campaign.

        The campaign reuses this analysis's already-extracted flow through a
        seeded :class:`~repro.studies.cache.ExtractionCache` (the layout cell
        hashes to the same content key), so running it performs zero
        additional extractions on any backend.
        """
        from ..studies import Campaign, ParamSpace

        vtune_values = tuple(vtune_values or self.options.vtune_values)
        if noise_frequencies is None:
            noise_frequencies = self.options.noise_frequencies
        frequencies = tuple(
            float(f) for f in np.asarray(noise_frequencies, dtype=float))
        return Campaign(
            name=f"{self.flow.cell.name}__spur_sweep",
            space=ParamSpace({"vtune": vtune_values,
                              "noise_frequency": frequencies}),
            base_spec=self.spec,
            options=self.options)

    def spur_sweep(self, vtune_values: tuple[float, ...] | None = None,
                   noise_frequencies: np.ndarray | None = None,
                   backend=None, cache=None,
                   cache_dir=None) -> VcoSpurSweepResult:
        """Total spur power versus noise frequency for several tuning voltages.

        Runs through the :mod:`repro.studies` sweep engine: ``backend``
        selects serial or sharded execution (default
        :class:`~repro.studies.backends.SerialBackend`) and ``cache`` an
        extraction cache to share across studies (default: a fresh one,
        seeded with this analysis's flow so nothing is re-extracted).
        ``cache_dir`` instead builds a persistent
        :class:`~repro.studies.store.DiskExtractionCache` under that
        directory, so repeated sweeps warm-start across processes.  The
        reference curve per V_tune is the ideal resistive-coupling + FM line
        (-20 dB/decade) anchored at the first simulated point; the comparison
        therefore measures how well the simulated sweep follows the mechanism
        the paper identifies.
        """
        from ..studies import SweepRunner

        campaign = self.spur_campaign(vtune_values, noise_frequencies)
        cache = _resolve_cache(cache, cache_dir)
        cache.seed(self.flow, options=self.options.flow)
        runner = SweepRunner(self.technology, backend=backend, cache=cache)
        return runner.run(campaign).to_vco_sweep_result(
            measurements.FIG8_SLOPE_DB_PER_DECADE)

    # -- Figure 9 -------------------------------------------------------------------------

    def contributions(self, vtune: float = 0.0,
                      noise_frequencies: np.ndarray | None = None
                      ) -> ContributionResult:
        """Per-entry contribution to the spur power (Figure 9)."""
        if noise_frequencies is None:
            noise_frequencies = np.asarray(self.options.noise_frequencies)
        noise_frequencies = np.asarray(noise_frequencies, dtype=float)
        results, _vco, _catalog, _tf = self.analyze(vtune, noise_frequencies)

        # Group the individual entries into the paper's categories.
        def category_of(name: str) -> str:
            if name.startswith(ENTRY_NMOS):
                return ENTRY_NMOS
            return name

        categories: dict[str, np.ndarray] = {}
        for index, result in enumerate(results):
            per_entry_power: dict[str, float] = {}
            for entry in result.entries:
                category = category_of(entry.name)
                v_fm = result.per_entry_fm_voltage[entry.name]
                v_am = result.per_entry_am_voltage[entry.name]
                per_entry_power[category] = per_entry_power.get(category, 0.0) \
                    + (v_fm ** 2 + v_am ** 2)
            for category, power in per_entry_power.items():
                if category not in categories:
                    categories[category] = np.full(len(results), -300.0)
                categories[category][index] = 10.0 * math.log10(
                    max(power / 50.0 / 1e-3, 1e-30))

        total = np.array([r.total_spur_power_dbm() for r in results])
        slopes = {name: slope_per_decade(noise_frequencies, level)
                  for name, level in categories.items()}
        mechanisms = {name: classify_mechanism(slope)
                      for name, slope in slopes.items()}
        return ContributionResult(vtune=vtune,
                                  noise_frequencies=noise_frequencies,
                                  contributions_dbm=categories,
                                  total_dbm=total,
                                  slopes=slopes,
                                  mechanisms=mechanisms)

    # -- Figure 7 -------------------------------------------------------------------------

    def output_spectrum(self, vtune: float = 0.0, noise_frequency: float = 10e6,
                        periods_of_noise: int = 8,
                        samples_per_carrier_period: int = 8
                        ) -> tuple[Spectrum, SpurResult]:
        """Spectrum-analyzer view of the VCO output with a tone in the substrate."""
        results, vco, _catalog, _tf = self.analyze(
            vtune, np.asarray([noise_frequency]))
        spur = results[0]
        carrier_frequency = spur.carrier_frequency
        sample_rate = carrier_frequency * samples_per_carrier_period
        duration = periods_of_noise / noise_frequency
        times, waveform = synthesize_output_waveform(spur, duration, sample_rate)
        spectrum = compute_spectrum(times, waveform)
        return spectrum, spur


def _resolve_cache(cache, cache_dir):
    """Resolve the ``cache=`` / ``cache_dir=`` pair of the study entry points.

    ``cache`` is any extraction-cache instance to share across studies;
    ``cache_dir`` builds a persistent on-disk cache under the directory.
    Passing both is ambiguous and rejected.
    """
    from ..studies import DiskExtractionCache, ExtractionCache

    if cache is not None and cache_dir is not None:
        raise AnalysisError(
            "pass either cache= (an existing cache instance) or cache_dir= "
            "(a directory for a DiskExtractionCache), not both")
    if cache_dir is not None:
        return DiskExtractionCache(cache_dir)
    return cache if cache is not None else ExtractionCache()


def mechanism_report(contribution: ContributionResult) -> MechanismReport:
    """Section-5 classification of the dominant coupling / modulation mechanism."""
    dominant = contribution.dominant_entry()
    return MechanismReport(
        slopes_db_per_decade=dict(contribution.slopes),
        mechanisms=dict(contribution.mechanisms),
        dominant_entry=dominant,
        dominant_mechanism=contribution.mechanisms[dominant])


def ground_resistance_study(technology: ProcessTechnology,
                            spec: VcoLayoutSpec | None = None,
                            options: VcoExperimentOptions | None = None,
                            width_scale: float = 2.0,
                            vtune: float = 0.0,
                            backend=None, cache=None,
                            cache_dir=None) -> DesignStudyResult:
    """Figure 10: widen the ground interconnect and re-run the full flow.

    Implemented as a two-variant layout campaign on the :mod:`repro.studies`
    engine (axis ``ground_width_scale``), so the nominal and widened layouts
    are extracted through the shared cache — a repeated study against a warm
    ``cache`` (or a ``cache_dir`` populated by any earlier process) performs
    zero extractions — and the per-variant analyses can be sharded with a
    parallel ``backend``.
    """
    from ..studies import Campaign, ParamSpace, SweepRunner

    spec = spec or VcoLayoutSpec()
    options = options or VcoExperimentOptions()
    if width_scale <= 0:
        raise AnalysisError("width scale must be positive")
    cache = _resolve_cache(cache, cache_dir)

    scales = (spec.ground_width_scale, spec.ground_width_scale * width_scale)
    frequencies = tuple(float(f) for f in options.noise_frequencies)
    campaign = Campaign(
        name="fig10_ground_grid",
        space=ParamSpace({"ground_width_scale": scales,
                          "vtune": (vtune,),
                          "noise_frequency": frequencies}),
        base_spec=spec,
        options=options)
    runner = SweepRunner(technology, backend=backend, cache=cache)
    sweep = runner.run(campaign)

    nominal_dbm = np.array([r.spur_power_dbm for r in sweep.select(variant=0)])
    improved_dbm = np.array([r.spur_power_dbm for r in sweep.select(variant=1)])
    r_nominal = sweep.variants[0].flow.interconnect.resistance_between(
        NET_GROUND_RING, NET_GROUND_PAD)
    r_improved = sweep.variants[1].flow.interconnect.resistance_between(
        NET_GROUND_RING, NET_GROUND_PAD)
    reduction = float(np.mean(nominal_dbm - improved_dbm))
    ideal = 20.0 * math.log10(r_nominal / r_improved) if r_improved > 0 else 0.0
    return DesignStudyResult(
        noise_frequencies=np.asarray(frequencies),
        nominal_dbm=nominal_dbm,
        improved_dbm=improved_dbm,
        nominal_ground_resistance=r_nominal,
        improved_ground_resistance=r_improved,
        predicted_reduction_db=reduction,
        ideal_reduction_db=ideal)
