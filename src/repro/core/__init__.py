"""The paper's methodology: extraction flow and figure-level experiments."""

from .flow import FlowOptions, FlowResult, FlowTimings, run_extraction_flow
from .nmos import NmosExperimentOptions, run_nmos_experiment
from .results import (
    ContributionResult,
    DesignStudyResult,
    MechanismReport,
    NmosExperimentResult,
    SpurSweepPoint,
    VcoSpurSweepResult,
)
from .vco_experiment import (
    VcoExperimentOptions,
    VcoImpactAnalysis,
    ground_resistance_study,
    mechanism_report,
)

__all__ = [
    "ContributionResult",
    "DesignStudyResult",
    "FlowOptions",
    "FlowResult",
    "FlowTimings",
    "MechanismReport",
    "NmosExperimentOptions",
    "NmosExperimentResult",
    "SpurSweepPoint",
    "VcoExperimentOptions",
    "VcoImpactAnalysis",
    "VcoSpurSweepResult",
    "ground_resistance_study",
    "mechanism_report",
    "run_extraction_flow",
    "run_nmos_experiment",
]
