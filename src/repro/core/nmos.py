"""Section 3 / Figure 3 experiment: substrate-noise impact on the RF NMOS.

The experiment reproduces the paper's one-transistor validation vehicle:

1. extract substrate, interconnect and devices from the NMOS measurement
   structure layout,
2. bias the four parallel RF NMOS devices over the 0.5-1.6 V sweep (gate and
   drain driven together through a bias tee, as in a curve-tracer setup),
3. inject a sinusoidal tone into the substrate through the SUB contact,
4. simulate the transfer from the injected tone to the NMOS output and
   compare against the reconstructed measurement of Figure 3,
5. additionally report the quantities the paper quotes in the text: the
   substrate-to-back-gate voltage division (1/652 with the ground-wire
   resistance, about half of that without), the gmb / gds ranges and the
   junction-capacitance crossover frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.compare import compare_curves
from ..analysis.waveforms import SinusoidalNoise
from ..data import measurements
from ..errors import AnalysisError
from ..layout.testchips import (
    NET_GATE,
    NET_GROUND_PAD,
    NET_GROUND_RING,
    NET_OUT,
    NET_SUB,
    NmosStructureSpec,
    backgate_node,
    make_nmos_measurement_structure,
)
from ..package.model import PackageModel
from ..simulator.dc import dc_operating_point
from ..simulator.transfer import transfer_function
from ..technology.process import ProcessTechnology
from .flow import FlowOptions, FlowResult, run_extraction_flow
from .results import NmosExperimentResult

#: External testbench node names.
NODE_SUB_DRIVE = "SUB_DRIVE"
NODE_SUB_EXT = "SUB_EXT"
NODE_GATE_EXT = "VGATE_EXT"
NODE_OUT_EXT = "OUT_EXT"
NODE_DRAIN_SUPPLY = "VDRAIN_EXT"


def _default_nmos_flow_options() -> FlowOptions:
    """Mesh configuration used for the Section-3 structure.

    A 36 x 36 lateral mesh over the port region puts the box size around the
    guard-ring spacing of the measurement structure; EXPERIMENTS.md documents
    the sensitivity of the extracted transfer to this choice.
    """
    from ..substrate.extraction import SubstrateExtractionOptions

    return FlowOptions(substrate=SubstrateExtractionOptions(
        nx=36, ny=36, lateral_margin=100e-6))


@dataclass(frozen=True)
class NmosExperimentOptions:
    """Controls of the Section-3 experiment."""

    bias_points: tuple[float, ...] = (0.5, 0.72, 0.94, 1.16, 1.38, 1.6)
    analysis_frequency: float = 1e6           #: tone frequency for the transfer
    injected_power_dbm: float = measurements.INJECTED_POWER_DBM
    source_impedance: float = 50.0
    bias_tee_inductance: float = 1e-3          #: DC feed choke at the output
    flow: FlowOptions = field(default_factory=_default_nmos_flow_options)


def _build_testbench(flow: FlowResult, options: NmosExperimentOptions,
                     bias: float):
    """Clone the impact netlist and add the measurement testbench around it."""
    import copy

    circuit = copy.deepcopy(flow.impact.circuit)
    # Probe / package connections.
    package = PackageModel.rf_probed({
        NET_GROUND_PAD: "0",
        NET_SUB: NODE_SUB_EXT,
        NET_GATE: NODE_GATE_EXT,
        NET_OUT: NODE_OUT_EXT,
    })
    package.add_to_circuit(circuit)

    # Gate bias.
    circuit.add_voltage_source("VGATE_SRC", NODE_GATE_EXT, "0", bias)
    # Drain bias through a bias-tee choke: DC at ``bias``, open at RF.
    circuit.add_inductor("L_biastee", NODE_OUT_EXT, NODE_DRAIN_SUPPLY,
                         options.bias_tee_inductance)
    circuit.add_voltage_source("VDRAIN_SRC", NODE_DRAIN_SUPPLY, "0", bias)
    # Substrate-noise source behind its source impedance.
    noise = SinusoidalNoise(power_dbm=options.injected_power_dbm,
                            frequency=options.analysis_frequency,
                            impedance=options.source_impedance)
    circuit.add_voltage_source("VSUB_SRC", NODE_SUB_DRIVE, "0",
                               noise.source_value())
    circuit.add_resistor("RSUB_SRC", NODE_SUB_DRIVE, NODE_SUB_EXT,
                         options.source_impedance)
    return circuit, noise


def _ground_wire_resistance(flow: FlowResult) -> float:
    return flow.interconnect.resistance_between(NET_GROUND_RING, NET_GROUND_PAD)


def _backgate_nodes(flow: FlowResult) -> list[str]:
    return [backgate_node(name) for name in sorted(flow.devices.mosfets)]


def _substrate_division(flow: FlowResult, ground_wire_resistance: float) -> float:
    """Voltage division from the SUB contact to the NMOS back-gate (vbs).

    Computed on the substrate macromodel alone, with the local ground ring
    tied to the external reference through ``ground_wire_resistance`` and the
    outer guard ring tied solidly — the configuration behind the paper's
    1/652 number.
    """
    macromodel = flow.substrate.macromodel
    injection = next(p.name for p in flow.substrate.ports
                     if p.kind.value == "injection")
    ring_port = next(p.name for p in flow.substrate.ports
                     if p.kind.value == "tap" and NET_GROUND_RING in p.nets)
    outer_port = next(p.name for p in flow.substrate.ports
                      if p.kind.value == "tap" and NET_GROUND_PAD in p.nets)
    backgate_ports = [p.name for p in flow.substrate.ports
                      if p.kind.value == "backgate"]
    if not backgate_ports:
        raise AnalysisError("no back-gate ports in the substrate extraction")
    grounding = {ring_port: max(ground_wire_resistance, 1e-3), outer_port: 0.05}
    # Voltage at the back-gate relative to the off-chip ground reference —
    # this is what drives the device output together with the local ground
    # bounce (the paper's "voltage division ... to the back-gate voltage").
    divisions = [abs(macromodel.voltage_division(injection, port, grounding))
                 for port in backgate_ports]
    return float(np.mean(divisions))


def run_nmos_experiment(technology: ProcessTechnology,
                        spec: NmosStructureSpec | None = None,
                        options: NmosExperimentOptions | None = None,
                        flow_result: FlowResult | None = None
                        ) -> NmosExperimentResult:
    """Run the complete Section-3 experiment and compare against the paper."""
    options = options or NmosExperimentOptions()
    spec = spec or NmosStructureSpec()
    if flow_result is None:
        cell = make_nmos_measurement_structure(spec)
        flow_result = run_extraction_flow(cell, technology, options=options.flow)

    ground_resistance = _ground_wire_resistance(flow_result)
    bias = np.asarray(options.bias_points, dtype=float)
    transfer_db = np.zeros_like(bias)
    gmb = np.zeros_like(bias)
    gds = np.zeros_like(bias)
    crossover = np.zeros_like(bias)

    mos_names = sorted(flow_result.devices.mosfets)
    for index, bias_value in enumerate(bias):
        circuit, _noise = _build_testbench(flow_result, options, float(bias_value))
        op = dc_operating_point(circuit)
        # Combined small-signal parameters of the parallel devices.
        total_gmb = 0.0
        total_gds = 0.0
        total_cj = 0.0
        for name in mos_names:
            device_op = op.operating_point_of(name)
            total_gmb += device_op.gmb
            total_gds += device_op.gds
            total_cj += device_op.cdb + device_op.csb
        gmb[index] = total_gmb
        gds[index] = total_gds
        crossover[index] = 3.0 * total_gmb / (2.0 * np.pi * max(total_cj, 1e-18))

        tf = transfer_function(circuit, "VSUB_SRC", [NET_OUT],
                               [options.analysis_frequency],
                               operating_point=op)
        transfer_db[index] = 20.0 * np.log10(
            max(abs(tf.at(NET_OUT, options.analysis_frequency)), 1e-30))

    reference_bias, reference_db = measurements.nmos_transfer_reference(bias)
    comparison = compare_curves(reference_bias, reference_db, bias, transfer_db)

    division = _substrate_division(flow_result, ground_resistance)
    division_ideal = _substrate_division(flow_result, 1e-3)

    return NmosExperimentResult(
        bias=bias, transfer_db=transfer_db, reference_db=reference_db,
        comparison=comparison,
        substrate_division=division,
        substrate_division_ideal_ground=division_ideal,
        gmb=gmb, gds=gds, crossover_frequencies=crossover,
        ground_wire_resistance=ground_resistance)
