"""Transfer-function analysis.

Computes the small-signal transfer ``H(f) = V(observe) / source`` from one
independent source to any set of observation nodes.  This is the workhorse of
the impact methodology: the transfer from the substrate-injection source to
every sensitive node (back-gate, on-chip ground, tank, output) is a transfer
function of this kind — the paper's ``h_sub^i`` factors.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..netlist.circuit import Circuit
from ..netlist.elements import CurrentSource, SourceValue, VoltageSource
from .ac import AcSolution, ac_analysis
from .dc import DcOptions, DcSolution


@dataclass
class TransferFunction:
    """Transfer from one source to several observation nodes over frequency."""

    source_name: str
    frequencies: np.ndarray
    transfers: dict[str, np.ndarray]      #: node -> complex H(f), shape (F,)

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.transfers[node])

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(self.magnitude(node), 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.transfers[node]))

    def at(self, node: str, frequency: float) -> complex:
        """Transfer to ``node`` at the frequency point closest to ``frequency``."""
        index = int(np.argmin(np.abs(self.frequencies - frequency)))
        return complex(self.transfers[node][index])

    def nodes(self) -> list[str]:
        return list(self.transfers)


def _activate_only(circuit: Circuit, source_name: str) -> Circuit:
    """Copy the circuit with unit AC drive on ``source_name`` and all other
    independent sources' AC values set to zero (their DC values are kept so the
    operating point is unchanged)."""
    clone = Circuit(name=f"{circuit.name}__tf_{source_name}")
    found = False
    for element in circuit:
        element_copy = copy.copy(element)
        if isinstance(element_copy, (VoltageSource, CurrentSource)):
            value = element_copy.value
            if element_copy.name == source_name:
                found = True
                new_value = SourceValue(dc=value.dc, ac_magnitude=1.0,
                                        ac_phase_deg=0.0, waveform=value.waveform)
            else:
                new_value = SourceValue(dc=value.dc, ac_magnitude=0.0,
                                        ac_phase_deg=0.0, waveform=value.waveform)
            element_copy.value = new_value
        clone.add(element_copy)
    if not found:
        raise SimulationError(f"no independent source named {source_name!r}")
    return clone


def transfer_function(circuit: Circuit, source_name: str,
                      observe_nodes: list[str],
                      frequencies: np.ndarray | list[float],
                      operating_point: DcSolution | None = None,
                      dc_options: DcOptions | None = None,
                      gmin: float = 1e-12) -> TransferFunction:
    """Compute ``V(node)/source`` for each node in ``observe_nodes``.

    The drive is applied as a unit AC excitation on the named independent
    source (voltage sources: 1 V, current sources: 1 A), so the returned
    transfers are in V/V or V/A respectively.  A precomputed
    ``operating_point`` of the original circuit is reused directly (the clone
    only changes AC magnitudes, which leave the DC solution untouched);
    ``gmin`` is forwarded to the underlying AC sweep.
    """
    if not observe_nodes:
        raise SimulationError("at least one observation node is required")
    working = _activate_only(circuit, source_name)
    ac = ac_analysis(working, frequencies, operating_point=operating_point,
                     dc_options=dc_options, gmin=gmin)
    transfers = {node: ac.voltage(node) for node in observe_nodes}
    return TransferFunction(source_name=source_name,
                            frequencies=np.asarray(ac.frequencies),
                            transfers=transfers)
