"""Transfer-function analysis.

Computes the small-signal transfer ``H(f) = V(observe) / source`` from one
or several independent sources to any set of observation nodes.  This is the
workhorse of the impact methodology: the transfer from the substrate-injection
source to every sensitive node (back-gate, on-chip ground, tank, output) is a
transfer function of this kind — the paper's ``h_sub^i`` factors.

Two performance properties of the implementation matter for sweeps:

* **Batched multi-RHS solves** — all requested sources are solved through
  *one* LU factorization per frequency point: the MNA matrices depend only on
  the operating point (never on a source's AC drive), so the per-source work
  is one extra right-hand-side column in a single
  :meth:`~repro.simulator.solver.Factorization.solve` call.
* **No circuit copies** — instead of cloning the circuit per source, the
  independent-source values are swapped out in place (unit AC drive on the
  analysed source, zero on every other) while the right-hand sides are
  assembled, and swapped back in a ``finally`` block, so the caller's circuit
  is restored even when the solve itself fails.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import SimulationError
from ..netlist.circuit import Circuit
from ..netlist.elements import CurrentSource, SourceValue, VoltageSource
from .dc import DcOptions, DcSolution, dc_operating_point
from .linalg import LinearSolver, SolverOptions, resolve_solver
from .mna import MnaStructure
from .solver import SharedPatternPair, add_gmin_diagonal


@dataclass
class TransferFunction:
    """Transfer from one source to several observation nodes over frequency."""

    source_name: str
    frequencies: np.ndarray
    transfers: dict[str, np.ndarray]      #: node -> complex H(f), shape (F,)

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.transfers[node])

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(self.magnitude(node), 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.transfers[node]))

    def at(self, node: str, frequency: float) -> complex:
        """Transfer to ``node`` at the frequency point closest to ``frequency``."""
        index = int(np.argmin(np.abs(self.frequencies - frequency)))
        return complex(self.transfers[node][index])

    def nodes(self) -> list[str]:
        return list(self.transfers)


@contextmanager
def substituted_sources(circuit: Circuit) -> Iterator:
    """Swap the independent-source values for AC-zeroed stand-ins, in place.

    Yields a ``drive(source_name)`` callback that re-swaps the values so that
    exactly ``source_name`` carries a unit AC drive (1 V / 1 A at zero phase)
    and every other independent source is AC-quiet; ``drive(None)`` silences
    all of them.  DC levels and transient waveforms are preserved throughout,
    so the operating point of the circuit is untouched.

    The original :class:`~repro.netlist.elements.SourceValue` objects are
    restored in a ``finally`` block — the circuit comes back unmodified even
    when the body raises (e.g. a singular-matrix
    :class:`~repro.errors.SimulationError` mid-solve).
    """
    sources = [element for element in circuit
               if isinstance(element, (VoltageSource, CurrentSource))]
    originals = [(element, element.value) for element in sources]

    def drive(source_name: str | None) -> None:
        for element, value in originals:
            magnitude = 1.0 if element.name == source_name else 0.0
            element.value = SourceValue(dc=value.dc, ac_magnitude=magnitude,
                                        ac_phase_deg=0.0,
                                        waveform=value.waveform)

    try:
        drive(None)
        yield drive
    finally:
        for element, value in originals:
            element.value = value


def transfer_functions(circuit: Circuit, source_names: Sequence[str],
                       observe_nodes: list[str],
                       frequencies: np.ndarray | list[float],
                       operating_point: DcSolution | None = None,
                       dc_options: DcOptions | None = None,
                       gmin: float = 1e-12,
                       solver: SolverOptions | LinearSolver | None = None
                       ) -> dict[str, TransferFunction]:
    """Compute ``V(node)/source`` for every (source, node) combination.

    All sources are solved *batched*: per frequency point the complex system
    ``(G + j*omega*C)`` is assembled on a shared sparsity pattern and
    factorized once, then every source's unit-drive right-hand side is solved
    through that single factorization as one multi-RHS block.  ``solver``
    selects the linear-solver backend; ``solver.options.ac_workers`` shards
    the frequency points across worker threads, exactly like
    :func:`~repro.simulator.ac.ac_analysis`.  Returns a mapping
    ``source name -> TransferFunction`` (V/V for voltage sources,
    V/A for current sources).
    """
    if not observe_nodes:
        raise SimulationError("at least one observation node is required")
    if not source_names:
        raise SimulationError("at least one source name is required")
    circuit.validate()
    solver = resolve_solver(solver)
    frequencies = np.asarray(list(frequencies), dtype=float)
    if frequencies.size == 0:
        raise SimulationError("transfer analysis needs at least one frequency")
    if np.any(frequencies < 0):
        raise SimulationError("AC frequencies must be non-negative")

    available = {element.name for element in circuit.sources()}
    for name in source_names:
        if name not in available:
            raise SimulationError(f"no independent source named {name!r}")
    if len(set(source_names)) != len(source_names):
        raise SimulationError("duplicate source names in transfer request")

    structure = MnaStructure.from_circuit(circuit)
    if operating_point is None and circuit.nonlinear_elements():
        operating_point = dc_operating_point(circuit, dc_options,
                                             solver=solver)

    # The small-signal matrices depend on the operating point only, never on
    # the sources' AC values, so they are built once for all sources.
    from .ac import _ac_rhs, _small_signal_matrices, run_frequency_points

    g_matrix, c_matrix = _small_signal_matrices(circuit, structure,
                                                operating_point)
    g_matrix = add_gmin_diagonal(g_matrix, structure.n_nodes,
                                 solver.options.effective_gmin(gmin))
    pattern = SharedPatternPair(g_matrix, c_matrix)

    vectors = np.zeros((frequencies.size, structure.size, len(source_names)),
                       dtype=complex)
    with substituted_sources(circuit) as drive:
        # One RHS column per source: swap a unit drive onto each source in
        # turn and read the stamped phasors back off the circuit.
        rhs_block = np.zeros((structure.size, len(source_names)),
                             dtype=complex)
        for column, name in enumerate(source_names):
            drive(name)
            rhs_block[:, column] = _ac_rhs(circuit, structure)

        def per_point(point_solver: LinearSolver, matrix, index: int) -> None:
            factorization = point_solver.factorize(matrix,
                                                   structure=structure)
            vectors[index] = factorization.solve(rhs_block)

        run_frequency_points(pattern, frequencies, solver, per_point,
                             rhs=rhs_block, out=vectors, multi_rhs=True)

    results: dict[str, TransferFunction] = {}
    for column, name in enumerate(source_names):
        transfers = {}
        for node in observe_nodes:
            row = structure.node_row(node)
            transfers[node] = (np.zeros(frequencies.size, dtype=complex)
                               if row is None else vectors[:, row, column])
        results[name] = TransferFunction(source_name=name,
                                         frequencies=frequencies.copy(),
                                         transfers=transfers)
    return results


def transfer_function(circuit: Circuit, source_name: str,
                      observe_nodes: list[str],
                      frequencies: np.ndarray | list[float],
                      operating_point: DcSolution | None = None,
                      dc_options: DcOptions | None = None,
                      gmin: float = 1e-12,
                      solver: SolverOptions | LinearSolver | None = None
                      ) -> TransferFunction:
    """Compute ``V(node)/source`` for each node in ``observe_nodes``.

    The drive is applied as a unit AC excitation on the named independent
    source (voltage sources: 1 V, current sources: 1 A), so the returned
    transfers are in V/V or V/A respectively.  A precomputed
    ``operating_point`` of the original circuit is reused directly (only AC
    magnitudes are substituted during the solve, which leaves the DC solution
    untouched); ``gmin`` is forwarded to the underlying AC assembly.  This is
    the single-source convenience wrapper around :func:`transfer_functions`.
    """
    return transfer_functions(circuit, [source_name], observe_nodes,
                              frequencies, operating_point=operating_point,
                              dc_options=dc_options, gmin=gmin,
                              solver=solver)[source_name]
