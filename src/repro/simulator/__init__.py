"""Sparse-MNA circuit simulator: DC, AC, transfer-function and transient analyses."""

from .mna import MatrixStamper, MnaStructure, SolutionView, solve_sparse, stamp_linear_elements
from .dc import DcOptions, DcSolution, dc_operating_point
from .ac import AcSolution, ac_analysis
from .transfer import TransferFunction, transfer_function
from .transient import TransientOptions, TransientSolution, transient_analysis

__all__ = [
    "AcSolution",
    "DcOptions",
    "DcSolution",
    "MatrixStamper",
    "MnaStructure",
    "SolutionView",
    "TransferFunction",
    "TransientOptions",
    "TransientSolution",
    "ac_analysis",
    "dc_operating_point",
    "solve_sparse",
    "stamp_linear_elements",
    "transfer_function",
    "transient_analysis",
]
