"""Sparse-MNA circuit simulator: DC, AC, transfer-function and transient analyses."""

from .mna import MatrixStamper, MnaStructure, SolutionView, solve_sparse, stamp_linear_elements
from .solver import (
    Factorization,
    SharedPatternPair,
    SolverStats,
    add_gmin_diagonal,
    factorize,
    gmin_diagonal,
    stats as solver_stats,
)
from .linalg import (
    DirectLUSolver,
    IterativeSolver,
    LinearSolver,
    ReusePatternLUSolver,
    SolverOptions,
    make_solver,
    resolve_solver,
)
from .dc import DcOptions, DcSolution, dc_operating_point
from .ac import AcSolution, ac_analysis
from .transfer import (
    TransferFunction,
    substituted_sources,
    transfer_function,
    transfer_functions,
)
from .transient import TransientOptions, TransientSolution, transient_analysis

__all__ = [
    "AcSolution",
    "DcOptions",
    "DcSolution",
    "DirectLUSolver",
    "Factorization",
    "IterativeSolver",
    "LinearSolver",
    "MatrixStamper",
    "MnaStructure",
    "ReusePatternLUSolver",
    "SharedPatternPair",
    "SolutionView",
    "SolverOptions",
    "SolverStats",
    "TransferFunction",
    "TransientOptions",
    "TransientSolution",
    "ac_analysis",
    "add_gmin_diagonal",
    "dc_operating_point",
    "factorize",
    "gmin_diagonal",
    "make_solver",
    "resolve_solver",
    "solve_sparse",
    "solver_stats",
    "stamp_linear_elements",
    "substituted_sources",
    "transfer_function",
    "transfer_functions",
    "transient_analysis",
]
