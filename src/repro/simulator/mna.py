"""Modified nodal analysis (MNA) assembly.

The assembler turns a :class:`~repro.netlist.circuit.Circuit` into the sparse
matrices of the MNA formulation

``(G + s*C) x = b``

where ``x`` stacks the node voltages (excluding ground) and the branch
currents of voltage-defined elements (voltage sources, inductors, VCVS).

Two classes cooperate:

* :class:`MnaStructure` — the fixed index maps (node name -> row, branch name
  -> row) derived once from the circuit.
* :class:`MatrixStamper` — an implementation of the
  :class:`~repro.netlist.stamping.Stamper` interface that accumulates stamps
  into ``G``, ``C`` and the right-hand side ``b`` using those index maps.

Analyses create a fresh stamper (or copy a pre-stamped linear one), let the
elements stamp themselves, overwrite the right-hand side with the source
values they need (DC levels, AC phasors, transient samples) and solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import SimulationError
from ..netlist.circuit import Circuit
from ..netlist.stamping import GROUND, Stamper
from . import solver as _solver


@dataclass(frozen=True)
class MnaStructure:
    """Index maps of the MNA unknown vector for a given circuit."""

    node_index: dict[str, int]
    branch_index: dict[str, int]

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "MnaStructure":
        nodes = circuit.nodes()
        branches = circuit.branches()
        node_index = {name: i for i, name in enumerate(nodes)}
        branch_index = {name: len(nodes) + i for i, name in enumerate(branches)}
        return cls(node_index=node_index, branch_index=branch_index)

    @property
    def n_nodes(self) -> int:
        return len(self.node_index)

    @property
    def n_branches(self) -> int:
        return len(self.branch_index)

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def node_row(self, node: str) -> int | None:
        """Row of a node, or ``None`` for the ground node."""
        if node == GROUND:
            return None
        try:
            return self.node_index[node]
        except KeyError:
            raise SimulationError(f"unknown node {node!r}") from None

    def branch_row(self, branch: str) -> int:
        try:
            return self.branch_index[branch]
        except KeyError:
            raise SimulationError(f"unknown branch {branch!r}") from None


class TripletAccumulator:
    """COO triplet lists for one sparse matrix being stamped.

    Appending a triplet is O(1); the CSR matrix is built once at the end
    (``coo_matrix`` sums duplicate entries during conversion), which makes
    stamping O(nnz) instead of the repeated sparse indexing a ``lil_matrix``
    needs.
    """

    __slots__ = ("shape", "rows", "cols", "vals")

    def __init__(self, size: int):
        self.shape = (size, size)
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []

    def add(self, row: int, col: int, value: float) -> None:
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(value)

    def tocsr(self) -> sp.csr_matrix:
        if not self.vals:
            return sp.csr_matrix(self.shape, dtype=float)
        matrix = sp.coo_matrix((self.vals, (self.rows, self.cols)),
                               shape=self.shape, dtype=float)
        return matrix.tocsr()

    def copy(self) -> "TripletAccumulator":
        clone = TripletAccumulator(self.shape[0])
        clone.rows = list(self.rows)
        clone.cols = list(self.cols)
        clone.vals = list(self.vals)
        return clone


class MatrixStamper(Stamper):
    """Accumulates element stamps into COO triplets for ``G``, ``C`` and a
    dense ``b``; the sparse matrices are assembled on demand."""

    def __init__(self, structure: MnaStructure):
        self.structure = structure
        size = structure.size
        self._g = TripletAccumulator(size)
        self._c = TripletAccumulator(size)
        self.rhs = np.zeros(size, dtype=float)

    # -- matrix access ---------------------------------------------------------

    def conductance_matrix(self) -> sp.csr_matrix:
        return self._g.tocsr()

    def capacitance_matrix(self) -> sp.csr_matrix:
        return self._c.tocsr()

    def copy(self) -> "MatrixStamper":
        """Deep copy of the accumulated stamps (used by Newton iterations)."""
        clone = MatrixStamper(self.structure)
        clone._g = self._g.copy()
        clone._c = self._c.copy()
        clone.rhs = self.rhs.copy()
        return clone

    # -- low-level helpers -------------------------------------------------------

    def _add(self, matrix: TripletAccumulator, row: int | None, col: int | None,
             value: float) -> None:
        if row is None or col is None:
            return
        matrix.add(row, col, value)

    def _stamp_two_node(self, matrix: TripletAccumulator, node_a: str, node_b: str,
                        value: float) -> None:
        a = self.structure.node_row(node_a)
        b = self.structure.node_row(node_b)
        self._add(matrix, a, a, value)
        self._add(matrix, b, b, value)
        self._add(matrix, a, b, -value)
        self._add(matrix, b, a, -value)

    # -- Stamper interface --------------------------------------------------------

    def conductance(self, node_a: str, node_b: str, value: float) -> None:
        self._stamp_two_node(self._g, node_a, node_b, value)

    def capacitance(self, node_a: str, node_b: str, value: float) -> None:
        self._stamp_two_node(self._c, node_a, node_b, value)

    def current(self, node_from: str, node_to: str, value: float) -> None:
        row_from = self.structure.node_row(node_from)
        row_to = self.structure.node_row(node_to)
        if row_from is not None:
            self.rhs[row_from] -= value
        if row_to is not None:
            self.rhs[row_to] += value

    def vccs(self, node_p: str, node_n: str, ctrl_p: str, ctrl_n: str,
             gm: float) -> None:
        p = self.structure.node_row(node_p)
        n = self.structure.node_row(node_n)
        cp = self.structure.node_row(ctrl_p)
        cn = self.structure.node_row(ctrl_n)
        self._add(self._g, p, cp, gm)
        self._add(self._g, p, cn, -gm)
        self._add(self._g, n, cp, -gm)
        self._add(self._g, n, cn, gm)

    def branch_voltage_source(self, branch: str, node_p: str, node_n: str,
                              value: float) -> None:
        k = self.structure.branch_row(branch)
        p = self.structure.node_row(node_p)
        n = self.structure.node_row(node_n)
        self._add(self._g, p, k, 1.0)
        self._add(self._g, n, k, -1.0)
        self._add(self._g, k, p, 1.0)
        self._add(self._g, k, n, -1.0)
        self.rhs[k] += value

    def branch_inductor(self, branch: str, node_p: str, node_n: str,
                        inductance: float) -> None:
        k = self.structure.branch_row(branch)
        p = self.structure.node_row(node_p)
        n = self.structure.node_row(node_n)
        self._add(self._g, p, k, 1.0)
        self._add(self._g, n, k, -1.0)
        self._add(self._g, k, p, 1.0)
        self._add(self._g, k, n, -1.0)
        # Branch equation: v_p - v_n - s*L*i = 0  ->  C[k,k] = -L.
        self._add(self._c, k, k, -inductance)

    def branch_vcvs(self, branch: str, node_p: str, node_n: str,
                    ctrl_p: str, ctrl_n: str, gain: float) -> None:
        k = self.structure.branch_row(branch)
        p = self.structure.node_row(node_p)
        n = self.structure.node_row(node_n)
        cp = self.structure.node_row(ctrl_p)
        cn = self.structure.node_row(ctrl_n)
        self._add(self._g, p, k, 1.0)
        self._add(self._g, n, k, -1.0)
        self._add(self._g, k, p, 1.0)
        self._add(self._g, k, n, -1.0)
        self._add(self._g, k, cp, -gain)
        self._add(self._g, k, cn, gain)


def stamp_linear_elements(circuit: Circuit,
                          structure: MnaStructure | None = None) -> MatrixStamper:
    """Stamp all linear elements of ``circuit`` into a fresh stamper."""
    structure = structure or MnaStructure.from_circuit(circuit)
    stamper = MatrixStamper(structure)
    for element in circuit.linear_elements():
        element.stamp(stamper)
    return stamper


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray,
                 structure: MnaStructure | None = None,
                 solver=None) -> np.ndarray:
    """Solve a sparse linear system, raising :class:`SimulationError` on failure.

    Thin wrapper around :func:`repro.simulator.solver.solve_sparse`, kept here
    because this module historically owned the one-shot solve.  Passing the
    ``structure`` lets singular-matrix errors name the offending node; a
    ``solver`` (:class:`~repro.simulator.linalg.SolverOptions` or a
    :class:`~repro.simulator.linalg.LinearSolver`) routes the solve through
    the pluggable backend layer instead of the default direct path.
    """
    if solver is not None:
        from .linalg import resolve_solver

        return resolve_solver(solver).solve(matrix, rhs, structure=structure)
    return _solver.solve_sparse(matrix, rhs, structure=structure)


@dataclass
class SolutionView:
    """Maps a raw MNA solution vector back to named node voltages / currents."""

    structure: MnaStructure
    vector: np.ndarray

    def voltage(self, node: str) -> complex | float:
        row = self.structure.node_row(node)
        if row is None:
            return 0.0
        return self.vector[row]

    def voltage_between(self, node_p: str, node_n: str) -> complex | float:
        return self.voltage(node_p) - self.voltage(node_n)

    def branch_current(self, branch: str) -> complex | float:
        return self.vector[self.structure.branch_row(branch)]

    def voltages(self) -> dict[str, complex | float]:
        return {name: self.vector[row]
                for name, row in self.structure.node_index.items()}
