"""Transient analysis.

Fixed-step time-domain integration of the MNA system

``C dx/dt + G x = b(t)``

* linear circuits: backward Euler or trapezoidal integration,
* circuits with nonlinear devices (MOSFETs, varactors): backward Euler with a
  Newton solve per time step; the reactive part of the nonlinear devices is
  frozen at its operating-point linearisation (constant small-signal
  capacitances), which is accurate for the small perturbations that substrate
  noise represents.

Performance notes: the linear path has a constant left-hand side, so it is
LU-factorized exactly once (:class:`~repro.simulator.solver.Factorization`)
and every time step is a cheap triangular solve; the source right-hand side
is sampled over the whole time grid up front
(:func:`repro.netlist.elements.SourceValue.sample`) instead of per step.

The analysis is used to propagate substrate-noise waveforms through the
extracted impact netlist and to produce the node waveforms the methodology
promises for "all the nodes within the circuit".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..errors import ConvergenceError, SimulationError
from ..netlist.circuit import Circuit
from ..netlist.elements import CurrentSource, VoltageSource
from .dc import DcOptions, DcSolution, dc_operating_point
from .linalg import LinearSolver, SolverOptions, resolve_solver
from .mna import MatrixStamper, MnaStructure, stamp_linear_elements
from .solver import add_gmin_diagonal


@dataclass
class TransientSolution:
    """Time-domain waveforms of every node voltage and branch current."""

    circuit: Circuit
    structure: MnaStructure
    times: np.ndarray                 #: shape (T,)
    vectors: np.ndarray               #: shape (T, size)

    def voltage(self, node: str) -> np.ndarray:
        row = self.structure.node_row(node)
        if row is None:
            return np.zeros(len(self.times))
        return self.vectors[:, row]

    def voltage_between(self, node_p: str, node_n: str) -> np.ndarray:
        return self.voltage(node_p) - self.voltage(node_n)

    def branch_current(self, branch: str) -> np.ndarray:
        return self.vectors[:, self.structure.branch_row(branch)]

    @property
    def timestep(self) -> float:
        return float(self.times[1] - self.times[0]) if len(self.times) > 1 else 0.0


@dataclass
class TransientOptions:
    """Integration controls."""

    method: Literal["backward_euler", "trapezoidal"] = "backward_euler"
    newton_max_iterations: int = 60
    newton_tolerance: float = 1e-8
    gmin: float = 1e-12


def _source_rhs_rows(circuit: Circuit, structure: MnaStructure,
                     times: np.ndarray) -> dict[int, np.ndarray]:
    """Per-row source samples over the whole time grid.

    Each source's waveform is sampled over ``times`` once; the result maps
    only the RHS rows that sources actually touch to their ``(T,)`` sample
    arrays, so memory stays O(sources * T) instead of a dense ``(T, size)``
    block while the per-step work is a handful of scalar adds.
    """
    rows: dict[int, np.ndarray] = {}

    def accumulate(row: int | None, samples: np.ndarray, sign: float) -> None:
        if row is None:
            return
        existing = rows.get(row)
        if existing is None:
            rows[row] = sign * samples
        else:
            existing += sign * samples

    for element in circuit.sources():
        samples = element.value.sample(times)
        if isinstance(element, VoltageSource):
            accumulate(structure.branch_row(element.name), samples, 1.0)
        elif isinstance(element, CurrentSource):
            accumulate(structure.node_row(element.node_p), samples, -1.0)
            accumulate(structure.node_row(element.node_n), samples, 1.0)
    return rows


def _nonlinear_contributions(circuit: Circuit, structure: MnaStructure,
                             x: np.ndarray) -> MatrixStamper:
    """Companion stamps of the nonlinear elements at solution guess ``x``."""
    stamper = MatrixStamper(structure)
    voltages = {name: float(x[row]) for name, row in structure.node_index.items()}
    for element in circuit.nonlinear_elements():
        element.stamp_companion(stamper, voltages)
    return stamper


def transient_analysis(circuit: Circuit, t_stop: float, timestep: float,
                       operating_point: DcSolution | None = None,
                       options: TransientOptions | None = None,
                       dc_options: DcOptions | None = None,
                       solver: SolverOptions | LinearSolver | None = None
                       ) -> TransientSolution:
    """Integrate the circuit from 0 to ``t_stop`` with a fixed ``timestep``.

    The initial condition is the DC operating point (sources at their DC/
    time-zero values).  ``solver`` selects the linear-solver backend; the
    reuse-pattern backend refactorizes values only across the Newton solves
    of a nonlinear integration (every step shares one sparsity pattern).
    """
    options = options or TransientOptions()
    solver = resolve_solver(solver)
    circuit.validate()
    if t_stop <= 0 or timestep <= 0:
        raise SimulationError("t_stop and timestep must be positive")
    n_steps = int(round(t_stop / timestep))
    if n_steps < 1:
        raise SimulationError("the requested time span contains no steps")

    structure = MnaStructure.from_circuit(circuit)
    if operating_point is None:
        operating_point = dc_operating_point(circuit, dc_options,
                                             solver=solver)

    linear = stamp_linear_elements(circuit, structure)
    g_lin = add_gmin_diagonal(linear.conductance_matrix(),
                              structure.n_nodes,
                              solver.options.effective_gmin(options.gmin))
    c_lin = linear.capacitance_matrix()

    # Freeze the reactive part of the nonlinear devices at the operating point.
    nonlinear = circuit.nonlinear_elements()
    if nonlinear:
        cap_stamper = MatrixStamper(structure)
        op_voltages = operating_point.voltages()
        for element in nonlinear:
            element.stamp_small_signal(cap_stamper, op_voltages)
        # Only keep the capacitance part: the conductive small-signal stamps
        # are replaced by full Newton companion models during integration.
        c_lin = (c_lin + cap_stamper.capacitance_matrix()).tocsr()

    times = np.linspace(0.0, n_steps * timestep, n_steps + 1)
    vectors = np.zeros((n_steps + 1, structure.size))
    vectors[0] = operating_point.vector

    use_trap = options.method == "trapezoidal"
    if use_trap and nonlinear:
        raise SimulationError(
            "trapezoidal integration is only supported for linear circuits; "
            "use backward_euler for circuits with nonlinear devices")

    c_over_h = (c_lin / timestep).tocsr()
    if use_trap:
        lhs_matrix = (g_lin + 2.0 * c_over_h).tocsr()
        history_matrix = (2.0 * c_over_h - g_lin).tocsr()
    else:
        lhs_matrix = (g_lin + c_over_h).tocsr()
        history_matrix = c_over_h

    rhs_rows = _source_rhs_rows(circuit, structure, times)

    if not nonlinear:
        # Constant LHS: factorize exactly once for the whole time grid.
        lu = solver.factorize(lhs_matrix, structure=structure)
        for step in range(1, n_steps + 1):
            rhs_total = history_matrix @ vectors[step - 1]
            if use_trap:
                for row, samples in rhs_rows.items():
                    rhs_total[row] += samples[step] + samples[step - 1]
            else:
                for row, samples in rhs_rows.items():
                    rhs_total[row] += samples[step]
            vectors[step] = lu.solve(rhs_total)
    else:
        for step in range(1, n_steps + 1):
            x_prev = vectors[step - 1]
            x = x_prev.copy()
            base_rhs = c_over_h @ x_prev
            for row, samples in rhs_rows.items():
                base_rhs[row] += samples[step]
            converged = False
            for _ in range(options.newton_max_iterations):
                companion = _nonlinear_contributions(circuit, structure, x)
                matrix = (lhs_matrix + companion.conductance_matrix()).tocsr()
                rhs_total = base_rhs + companion.rhs
                x_new = solver.solve(matrix, rhs_total, structure=structure)
                delta = np.max(np.abs(x_new[:structure.n_nodes] - x[:structure.n_nodes])) \
                    if structure.n_nodes else 0.0
                x = x_new
                if delta <= options.newton_tolerance:
                    converged = True
                    break
            if not converged:
                raise ConvergenceError(
                    f"transient Newton failed to converge at t = {times[step]:.3e} s")
            vectors[step] = x

    return TransientSolution(circuit=circuit, structure=structure,
                             times=times, vectors=vectors)
