"""Pluggable linear-solver backend layer.

The strategy seam between "here is an assembled sparse system" and "here is
the solution": every analysis (DC, AC, transient, transfer functions, the
substrate Kron reduction) takes a ``solver=`` argument accepting a
:class:`SolverOptions` (declarative, travels through campaign configs and
cache keys) or a ready :class:`LinearSolver` instance (stateful, shares the
reuse-pattern cache across analyses).

Backends: :class:`DirectLUSolver` (SuperLU, the reference),
:class:`ReusePatternLUSolver` (symbolic-ordering reuse across same-pattern
factorizations), :class:`IterativeSolver` (preconditioned CG for SPD systems
with automatic direct-LU fallback), and :class:`MultigridSolver` (geometric
multigrid on the structured substrate grid, degrading to CG/ILU then LU on
non-grid or non-SPD systems).
"""

from ..solver import SolverStats
from .backends import (
    DirectLUSolver,
    IterativeSolver,
    LinearSolver,
    ReusePatternLUSolver,
    make_solver,
    resolve_solver,
)

# multigrid imports from .backends and self-registers into its backend
# registry, so it must come after — and the package __init__ always runs
# before any submodule import, which guarantees registration.
from .multigrid import GridGeometry, MultigridSolver
from .options import (
    AC_MODES,
    BACKEND_DIRECT,
    BACKEND_ITERATIVE,
    BACKEND_MULTIGRID,
    BACKEND_REUSE_LU,
    BACKENDS,
    MG_CYCLES,
    MG_MODES,
    MG_SMOOTHERS,
    PRECONDITIONERS,
    SolverOptions,
)

__all__ = [
    "AC_MODES",
    "BACKENDS",
    "BACKEND_DIRECT",
    "BACKEND_ITERATIVE",
    "BACKEND_MULTIGRID",
    "BACKEND_REUSE_LU",
    "DirectLUSolver",
    "GridGeometry",
    "IterativeSolver",
    "LinearSolver",
    "MG_CYCLES",
    "MG_MODES",
    "MG_SMOOTHERS",
    "MultigridSolver",
    "PRECONDITIONERS",
    "ReusePatternLUSolver",
    "SolverOptions",
    "SolverStats",
    "make_solver",
    "resolve_solver",
]
