"""Pluggable linear-solver backend layer.

The strategy seam between "here is an assembled sparse system" and "here is
the solution": every analysis (DC, AC, transient, transfer functions, the
substrate Kron reduction) takes a ``solver=`` argument accepting a
:class:`SolverOptions` (declarative, travels through campaign configs and
cache keys) or a ready :class:`LinearSolver` instance (stateful, shares the
reuse-pattern cache across analyses).

Backends: :class:`DirectLUSolver` (SuperLU, the reference),
:class:`ReusePatternLUSolver` (symbolic-ordering reuse across same-pattern
factorizations), :class:`IterativeSolver` (preconditioned CG for SPD systems
with automatic direct-LU fallback).
"""

from ..solver import SolverStats
from .backends import (
    DirectLUSolver,
    IterativeSolver,
    LinearSolver,
    ReusePatternLUSolver,
    make_solver,
    resolve_solver,
)
from .options import (
    BACKEND_DIRECT,
    BACKEND_ITERATIVE,
    BACKEND_REUSE_LU,
    BACKENDS,
    PRECONDITIONERS,
    SolverOptions,
)

__all__ = [
    "BACKENDS",
    "BACKEND_DIRECT",
    "BACKEND_ITERATIVE",
    "BACKEND_REUSE_LU",
    "DirectLUSolver",
    "IterativeSolver",
    "LinearSolver",
    "PRECONDITIONERS",
    "ReusePatternLUSolver",
    "SolverOptions",
    "SolverStats",
    "make_solver",
    "resolve_solver",
]
