"""The pluggable linear-solver backends.

Every analysis in the simulator used to call ``splu``/``spsolve`` directly;
this module is the strategy seam that replaced those hard-wired calls.  A
:class:`LinearSolver` exposes the same two operations the analyses always
needed —

* :meth:`LinearSolver.factorize` — prepare a matrix for repeated solves,
  returning a handle with a ``solve(rhs)`` accepting vectors or multi-RHS
  blocks,
* :meth:`LinearSolver.solve` — a one-shot solve,

— plus per-instance :class:`~repro.simulator.solver.SolverStats` so parallel
workers (the per-frequency AC fan-out, process-pool campaigns) count into
their own instance and are aggregated afterwards with :meth:`LinearSolver.absorb`
instead of racing on the module-level global.

Three implementations ship behind the seam:

* :class:`DirectLUSolver` — the historical SuperLU path, extracted verbatim.
* :class:`ReusePatternLUSolver` — reuses the fill-reducing column ordering
  (``perm_c`` of the first factorization) across every later matrix with the
  same sparsity pattern: Newton iterations, transient steps, V_tune points
  and AC frequency points all refactorize values only, skipping the COLAMD
  analysis and the structure scaffolding.
* :class:`IterativeSolver` — conjugate gradients with an AMG (when
  :mod:`pyamg` is available) or incomplete-LU preconditioner for symmetric
  positive-definite systems — the substrate mesh Laplacian — with automatic
  fallback to direct LU on non-SPD systems or CG breakdown.

A fourth backend, the geometric-multigrid
:class:`~repro.simulator.linalg.MultigridSolver`, lives in
:mod:`repro.simulator.linalg.multigrid` and self-registers via
:func:`register_backend`.
"""

from __future__ import annotations

import hashlib
import inspect
import warnings
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

#: Keyword spelling of CG's relative tolerance: ``rtol`` since SciPy 1.12,
#: ``tol`` before that (the package declares scipy >= 1.10).
_CG_RTOL_KEYWORD = ("rtol" if "rtol" in inspect.signature(spla.cg).parameters
                    else "tol")

from ...errors import SimulationError
from ...obs import get_logger, trace_span
from ..solver import (
    Factorization,
    SolverStats,
    _check_finite,
    _singular_hint,
    solve_sparse,
    stats as global_stats,
)
from .options import (
    BACKEND_DIRECT,
    BACKEND_ITERATIVE,
    BACKEND_REUSE_LU,
    SolverOptions,
)

logger = get_logger(__name__)


class LinearSolver:
    """Base class / protocol of the solver backends.

    Subclasses implement :meth:`factorize`; :meth:`solve` defaults to
    factorize-then-solve.  ``stats`` is per-instance; single-threaded solvers
    additionally mirror their counts into the module-level
    :data:`repro.simulator.solver.stats` so existing counter-based tests and
    benchmarks keep working, while :meth:`spawn`/:meth:`absorb` give fan-out
    workers isolated counters that are merged exactly once at the end.
    """

    name = "?"

    def __init__(self, options: SolverOptions | None = None, *,
                 mirror_global: bool = True):
        self.options = options or SolverOptions()
        self.stats = SolverStats(backend=self.name)
        self._mirror_global = mirror_global

    # -- counting ------------------------------------------------------------

    @property
    def _sinks(self) -> tuple[SolverStats, ...]:
        if self._mirror_global:
            return (self.stats, global_stats)
        return (self.stats,)

    def _bump(self, counter: str, amount: int = 1) -> None:
        for sink in self._sinks:
            setattr(sink, counter, getattr(sink, counter) + amount)

    # -- the seam ------------------------------------------------------------

    def factorize(self, matrix: sp.spmatrix, structure=None, grid=None):
        """Prepare ``matrix`` for repeated solves; returns a handle with
        ``solve(rhs)`` accepting a vector or a dense ``(n, k)`` block.

        ``grid`` optionally describes the structured mesh geometry behind the
        matrix (a :class:`~repro.simulator.linalg.GridGeometry`); the
        multigrid backend coarsens along it, every other backend ignores it.
        """
        raise NotImplementedError

    def solve(self, matrix: sp.spmatrix, rhs: np.ndarray,
              structure=None, grid=None) -> np.ndarray:
        """One-shot solve of ``matrix @ x = rhs``."""
        return self.factorize(matrix, structure=structure, grid=grid).solve(rhs)

    # -- fan-out -------------------------------------------------------------

    def spawn(self) -> "LinearSolver":
        """A worker clone: same options, isolated stats, no global mirror."""
        return type(self)(self.options, mirror_global=False)

    def absorb(self, worker: "LinearSolver") -> None:
        """Fold a :meth:`spawn`-ed worker's counters back into this solver."""
        self.absorb_stats(worker.stats)

    def absorb_stats(self, stats: SolverStats) -> None:
        """Fold a bare :class:`SolverStats` into this solver's counters.

        The process-level frequency fan-out sends counters home *by value*
        (a worker process's solver instance cannot travel back), so the
        absorption seam accepts the stats object itself; :meth:`absorb`
        is the thread-path convenience over it.
        """
        self.stats.merge(stats)
        if self._mirror_global:
            global_stats.merge(stats)


class DirectLUSolver(LinearSolver):
    """The reference backend: one SuperLU factorization per matrix."""

    name = BACKEND_DIRECT

    def factorize(self, matrix: sp.spmatrix, structure=None,
                  grid=None) -> Factorization:
        return Factorization(matrix, structure=structure, sinks=self._sinks)

    def solve(self, matrix: sp.spmatrix, rhs: np.ndarray,
              structure=None, grid=None) -> np.ndarray:
        return solve_sparse(matrix, rhs, structure=structure,
                            sinks=self._sinks)


def _canonical_csc(matrix: sp.spmatrix) -> sp.csc_matrix:
    """Canonical CSC (summed duplicates, sorted indices) for stable patterns.

    Explicit zeros are deliberately *kept*: eliminating them would make the
    sparsity pattern value-dependent and defeat the whole point of symbolic
    reuse (the same stamps must always produce the same pattern).
    """
    csc = sp.csc_matrix(matrix)
    if csc is matrix:
        csc = csc.copy()
    csc.sum_duplicates()
    csc.sort_indices()
    return csc


class _PermutedLU:
    """A SuperLU factorization of a column-permuted matrix.

    ``splu`` was run on ``A[:, perm]`` with the natural column ordering, so
    solutions come back permuted: ``x[perm] = y``.  Solve semantics (multi-RHS
    blocks, complex RHS on a real factorization, finite checks) mirror
    :class:`~repro.simulator.solver.Factorization`.
    """

    def __init__(self, lu, perm: np.ndarray | None, matrix: sp.csc_matrix,
                 structure, sinks: tuple[SolverStats, ...]):
        self.shape = matrix.shape
        self._lu = lu
        self._perm = perm
        self._matrix = matrix
        self._structure = structure
        self._sinks = sinks
        self._complex = np.iscomplexobj(matrix.data)

    def _raw_solve(self, rhs: np.ndarray) -> np.ndarray:
        if np.iscomplexobj(rhs) and not self._complex:
            return (self._lu.solve(np.ascontiguousarray(rhs.real))
                    + 1j * self._lu.solve(np.ascontiguousarray(rhs.imag)))
        return self._lu.solve(np.ascontiguousarray(rhs))

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise SimulationError(
                f"RHS length {rhs.shape[0]} does not match matrix size "
                f"{self.shape[0]}")
        with trace_span("solver.solve"):
            solution = self._raw_solve(rhs)
        if self._perm is not None:
            unpermuted = np.empty_like(solution)
            unpermuted[self._perm] = solution
            solution = unpermuted
        for sink in self._sinks:
            sink.solves += 1
        return _check_finite(solution, self._matrix, self._structure)


class _PatternRecord:
    """Cached symbolic analysis of one sparsity pattern.

    ``order`` is the column order that reproduces the reference
    factorization's fill pattern when applied as ``A[:, order]`` — the
    *inverse* of SuperLU's ``perm_c`` (SuperLU reports the permutation that
    maps pre-permuted columns back to original positions, so pre-permuting
    with ``perm_c`` itself would scramble the ordering and explode the fill).

    ``matrix`` is a preallocated CSC scaffold of ``A[:, order]``: every
    refactorization gathers the new values into its (warm) data buffer in
    place instead of building a fresh matrix.
    """

    __slots__ = ("order", "gather", "matrix")

    def __init__(self, order, gather, matrix):
        self.order = order        #: fill-reducing column order (A[:, order])
        self.gather = gather      #: data[gather] re-sorts values into A[:, order]
        self.matrix = matrix      #: reusable CSC scaffold of A[:, order]


class ReusePatternLUSolver(LinearSolver):
    """LU that reuses the symbolic ordering across same-pattern matrices.

    The first factorization of a pattern runs the full SuperLU pipeline and
    captures its fill-reducing column permutation; every later matrix with an
    identical pattern is factorized as ``splu(A[:, perm], permc_spec=
    "NATURAL")`` — the COLAMD analysis and the permuted-structure scaffolding
    are skipped, and the only per-call structural work is one ``take`` of the
    data array.  Numeric partial pivoting still runs per factorization, so
    accuracy matches the direct backend.
    """

    name = BACKEND_REUSE_LU

    def __init__(self, options: SolverOptions | None = None, *,
                 mirror_global: bool = True):
        super().__init__(options, mirror_global=mirror_global)
        self._patterns: OrderedDict[bytes, _PatternRecord] = OrderedDict()

    @staticmethod
    def _pattern_key(csc: sp.csc_matrix) -> bytes:
        digest = hashlib.sha1()
        digest.update(csc.dtype.char.encode())   # scaffold buffers are typed
        digest.update(np.int64(csc.shape[0]).tobytes())
        digest.update(np.int64(csc.nnz).tobytes())
        digest.update(csc.indptr.tobytes())
        digest.update(csc.indices.tobytes())
        return digest.digest()

    @staticmethod
    def _splu(matrix: sp.csc_matrix, structure, **kwargs):
        try:
            return spla.splu(matrix, **kwargs)
        except RuntimeError as exc:
            raise SimulationError(
                f"sparse factorization failed: {exc}"
                + _singular_hint(matrix, structure)) from exc

    def _remember(self, key: bytes, csc: sp.csc_matrix,
                  perm_c: np.ndarray) -> None:
        order = np.empty_like(perm_c)
        order[perm_c] = np.arange(len(perm_c), dtype=perm_c.dtype)
        lengths = np.diff(csc.indptr)[order]
        indptr = np.concatenate(([0], np.cumsum(lengths)))
        starts = csc.indptr[order]
        # gather[k] = position in csc.data of the k-th entry of A[:, order]:
        # each permuted column is a contiguous slice of the original data.
        gather = (np.arange(csc.nnz, dtype=np.int64)
                  - np.repeat(indptr[:-1], lengths)
                  + np.repeat(starts, lengths)) if csc.nnz else \
            np.zeros(0, dtype=np.int64)
        scaffold = sp.csc_matrix(
            (np.empty(csc.nnz, dtype=csc.dtype),
             csc.indices[gather], indptr.astype(csc.indptr.dtype)),
            shape=csc.shape)
        self._patterns[key] = _PatternRecord(order=order, gather=gather,
                                             matrix=scaffold)
        while len(self._patterns) > self.options.max_cached_patterns:
            self._patterns.popitem(last=False)

    def factorize(self, matrix: sp.spmatrix, structure=None, grid=None):
        if matrix.shape[0] != matrix.shape[1]:
            raise SimulationError("MNA matrix must be square")
        if matrix.shape[0] == 0:
            return Factorization(matrix, structure=structure,
                                 sinks=self._sinks)
        csc = _canonical_csc(matrix)
        key = self._pattern_key(csc)
        record = self._patterns.get(key)
        if record is None:
            with trace_span("solver.factorize"):
                lu = self._splu(csc, structure)
            self._remember(key, csc, np.asarray(lu.perm_c))
            self._bump("factorizations")
            return _PermutedLU(lu, None, csc, structure, self._sinks)
        self._patterns.move_to_end(key)
        # Same column order as the reference factorization, so the numeric
        # partial pivoting makes the same choices: refactorized solutions are
        # bit-identical to a fresh direct factorization, minus its COLAMD
        # run.  The gather writes into the record's preallocated scaffold
        # (splu copies what it needs, so reusing the buffer is safe).
        with trace_span("solver.refactorize"):
            np.take(csc.data, record.gather, out=record.matrix.data)
            lu = self._splu(record.matrix, structure, permc_spec="NATURAL")
        self._bump("factorizations")
        self._bump("pattern_reuses")
        return _PermutedLU(lu, record.order, csc, structure, self._sinks)


def _amg_preconditioner(csc: sp.csc_matrix):
    """AMG preconditioner via :mod:`pyamg`, or ``None`` when unavailable."""
    try:
        import pyamg
    except ImportError:
        return None
    ml = pyamg.smoothed_aggregation_solver(sp.csr_matrix(csc))
    return ml.aspreconditioner(cycle="V")


class _CgFactorization:
    """CG "factorization": a preconditioner prepared for repeated solves.

    Each right-hand-side column runs preconditioned CG; breakdown or
    non-convergence falls back to one (lazily built, then reused) direct LU
    of the same matrix when the options allow it.
    """

    def __init__(self, solver: "IterativeSolver", csc: sp.csc_matrix,
                 preconditioner, structure):
        self.shape = csc.shape
        self._solver = solver
        self._csc = csc
        self._preconditioner = preconditioner
        self._structure = structure
        self._lu: Factorization | None = None
        options = solver.options
        self._maxiter = options.cg_max_iterations or csc.shape[0]

    def _fallback_lu(self):
        if self._lu is None:
            self._lu = self._solver._degraded_factorize(
                self._csc, self._structure,
                reason="CG did not converge")
        return self._lu

    def _cg_column(self, rhs: np.ndarray) -> np.ndarray:
        if self._lu is not None:
            # An earlier column already proved CG stagnant on this system;
            # don't burn maxiter iterations per remaining column.
            return self._lu.solve(rhs)
        options = self._solver.options
        iterations = 0

        def count(_x):
            nonlocal iterations
            iterations += 1

        tolerances = {_CG_RTOL_KEYWORD: options.cg_rtol,
                      "atol": options.cg_atol}
        with trace_span("solver.cg"):
            solution, info = spla.cg(self._csc, rhs, maxiter=self._maxiter,
                                     M=self._preconditioner, callback=count,
                                     **tolerances)
        self._solver._bump("cg_iterations", iterations)
        if info != 0:
            return self._fallback_lu().solve(rhs)
        self._solver._bump("cg_solves")
        self._solver._bump("solves")
        return solution

    def _solve_real_column(self, rhs: np.ndarray) -> np.ndarray:
        if np.iscomplexobj(rhs):
            return (self._solve_real_column(np.ascontiguousarray(rhs.real))
                    + 1j * self._solve_real_column(
                        np.ascontiguousarray(rhs.imag)))
        return self._cg_column(rhs)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise SimulationError(
                f"RHS length {rhs.shape[0]} does not match matrix size "
                f"{self.shape[0]}")
        if rhs.ndim == 1:
            solution = self._solve_real_column(rhs)
        else:
            columns = [self._solve_real_column(np.ascontiguousarray(rhs[:, k]))
                       for k in range(rhs.shape[1])]
            solution = np.column_stack(columns) if columns else \
                np.zeros_like(rhs)
        return _check_finite(solution, self._csc, self._structure)


class IterativeSolver(LinearSolver):
    """Preconditioned CG for SPD systems, with an explicit degradation chain.

    The screen is conservative: a system qualifies for CG only when it is
    real, numerically symmetric and has a strictly positive diagonal — which
    in this codebase means the substrate mesh Laplacian (plus port contact
    conductances) of the Kron reduction.  Everything else — and any CG
    breakdown or stagnation — steps down an explicit, stats-recorded
    degradation ladder::

        iterative (CG)  ->  reuse-LU  ->  direct LU

    The first rung down is a shared :class:`ReusePatternLUSolver` (counted in
    ``stats.fallbacks``): repeated fallbacks of same-pattern systems — MNA
    matrices across Newton iterations, frequency points — pay the symbolic
    analysis once.  Only if that refactorization itself fails does the solve
    degrade to a plain direct factorization (counted in
    ``stats.fallback_direct``).  With ``iterative_fallback=False`` the ladder
    is disabled and non-CG-able systems raise instead.
    """

    name = BACKEND_ITERATIVE

    #: relative asymmetry tolerated by the SPD screen
    _SYMMETRY_RTOL = 1e-12

    def __init__(self, options: SolverOptions | None = None, *,
                 mirror_global: bool = True):
        super().__init__(options, mirror_global=mirror_global)
        self._fallback_solver: ReusePatternLUSolver | None = None

    def _spd_candidate(self, csc: sp.csc_matrix) -> bool:
        if np.iscomplexobj(csc.data) or csc.shape[0] == 0:
            return False
        diagonal = csc.diagonal()
        if diagonal.size == 0 or np.any(diagonal <= 0.0):
            return False
        scale = np.max(np.abs(csc.data)) if csc.nnz else 0.0
        if scale == 0.0:
            return False
        asymmetry = sp.csc_matrix(abs(csc - csc.T))
        max_asymmetry = asymmetry.data.max() if asymmetry.nnz else 0.0
        return bool(max_asymmetry <= self._SYMMETRY_RTOL * scale)

    def _make_preconditioner(self, csc: sp.csc_matrix):
        name = self.options.preconditioner
        if name == "none":
            return True, None
        if name == "jacobi":
            inverse_diagonal = 1.0 / csc.diagonal()
            return True, spla.LinearOperator(
                csc.shape, matvec=lambda x: inverse_diagonal * x)
        if name in ("auto", "amg"):
            preconditioner = _amg_preconditioner(csc)
            if preconditioner is not None:
                return True, preconditioner
            if name == "amg":
                # Warn (visible to interactive callers) *and* log with
                # structured context (machine-readable in run logs).
                warnings.warn(
                    "pyamg is not installed; the 'amg' preconditioner falls "
                    "back to incomplete LU", RuntimeWarning, stacklevel=4)
                logger.warning(
                    "preconditioner fallback: requested=%s actual=%s "
                    "reason=%s n=%d", name, "ilu", "pyamg not installed",
                    csc.shape[0])
        try:
            # SymmetricMode + no diagonal pivoting keeps the incomplete
            # factorization (approximately) symmetric — an incomplete-Cholesky
            # stand-in.  A pivoted ILU is *not* a valid CG preconditioner:
            # CG silently stagnates on the asymmetry.
            ilu = spla.spilu(csc, drop_tol=self.options.ilu_drop_tol,
                             fill_factor=self.options.ilu_fill_factor,
                             diag_pivot_thresh=0.0,
                             permc_spec="MMD_AT_PLUS_A",
                             options=dict(SymmetricMode=True))
        except (RuntimeError, ValueError):
            return False, None          # ILU broke down: not safely solvable
        return True, spla.LinearOperator(csc.shape, matvec=ilu.solve)

    def factorize(self, matrix: sp.spmatrix, structure=None, grid=None):
        if matrix.shape[0] != matrix.shape[1]:
            raise SimulationError("MNA matrix must be square")
        if matrix.shape[0] == 0:
            return Factorization(matrix, structure=structure,
                                 sinks=self._sinks)
        csc = _canonical_csc(matrix)
        if not self._spd_candidate(csc):
            return self._degraded_factorize(
                csc, structure, reason="matrix is not SPD-eligible for CG")
        with trace_span("solver.precondition"):
            ok, preconditioner = self._make_preconditioner(csc)
        if not ok:
            return self._degraded_factorize(
                csc, structure, reason="ILU preconditioner broke down")
        self._bump("factorizations")
        return _CgFactorization(self, csc, preconditioner, structure)

    def _reuse_lu(self) -> ReusePatternLUSolver:
        """The shared first-rung fallback solver (lazily built).

        Its stats object is *replaced* by this solver's, so every fallback
        factorization, pattern reuse and solve counts into the iterative
        backend's own counters (and the global mirror) — the ladder is one
        solver from the caller's point of view.
        """
        if self._fallback_solver is None:
            solver = ReusePatternLUSolver(self.options, mirror_global=False)
            solver.stats = self.stats
            solver._mirror_global = self._mirror_global
            self._fallback_solver = solver
        return self._fallback_solver

    def _degraded_factorize(self, csc: sp.csc_matrix, structure,
                            reason: str):
        """Step down the ladder: reuse-LU first, plain direct LU last."""
        if not self.options.iterative_fallback:
            raise SimulationError(
                f"{reason} and iterative_fallback is disabled")
        self._bump("fallbacks")
        logger.info("solver degradation: backend=%s rung=%s reason=%s n=%d",
                    self.name, "reuse-lu", reason, csc.shape[0])
        try:
            return self._reuse_lu().factorize(csc, structure=structure)
        except SimulationError:
            # The symbolic-reuse rung itself failed (e.g. pivot growth with
            # the cached ordering); one plain direct factorization is the
            # last rung before the error reaches the caller.
            self._bump("fallback_direct")
            logger.warning(
                "solver degradation: backend=%s rung=%s reason=%s n=%d",
                self.name, "direct", "reuse-LU rung failed", csc.shape[0])
            return Factorization(csc, structure=structure, sinks=self._sinks)


_BACKEND_CLASSES: dict[str, type[LinearSolver]] = {
    BACKEND_DIRECT: DirectLUSolver,
    BACKEND_REUSE_LU: ReusePatternLUSolver,
    BACKEND_ITERATIVE: IterativeSolver,
}


def register_backend(name: str, cls: type[LinearSolver]) -> None:
    """Register a backend class under its :data:`BACKENDS` name.

    Backends living outside this module (the geometric-multigrid solver)
    self-register at import time; the package ``__init__`` imports them after
    this module, so :func:`make_solver` always sees the full registry.
    """
    _BACKEND_CLASSES[name] = cls


def make_solver(options: SolverOptions | None = None, *,
                mirror_global: bool = True) -> LinearSolver:
    """Instantiate the backend selected by ``options.backend``.

    ``mirror_global=False`` builds the worker flavour — per-instance stats
    only, exactly what :meth:`LinearSolver.spawn` produces — used by worker
    *processes* that reconstruct their solver from pickled options.
    """
    options = options or SolverOptions()
    return _BACKEND_CLASSES[options.backend](options,
                                             mirror_global=mirror_global)


def resolve_solver(solver: "SolverOptions | LinearSolver | None"
                   ) -> LinearSolver:
    """Normalise the ``solver=`` argument every analysis accepts.

    ``None`` means the historical direct-LU behaviour; a
    :class:`SolverOptions` builds a fresh backend; an existing
    :class:`LinearSolver` instance is passed through so callers (e.g.
    :class:`~repro.core.vco_experiment.VcoImpactAnalysis`) can share one
    solver — and its pattern cache — across many analyses.
    """
    if solver is None:
        return DirectLUSolver()
    if isinstance(solver, SolverOptions):
        return make_solver(solver)
    return solver
