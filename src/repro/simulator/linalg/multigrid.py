"""Geometric multigrid on the structured substrate-mesh grid.

The substrate mesh of :mod:`repro.substrate.mesh` is a regular box grid with
node index ``(iz * ny + iy) * nx + ix`` — exactly the structure geometric
multigrid wants.  :class:`MultigridSolver` exploits it:

* **Transfer operators** — cell-centred linear interpolation, built as 1-D
  factors and combined with Kronecker products (``I_z (x) P_y (x) P_x``), so
  arbitrary (odd, non-power-of-two) lateral sizes coarsen cleanly.
  Restriction is the transpose (full weighting up to scaling), which keeps
  the hierarchy variational.
* **Galerkin coarse operators** — every coarse matrix is ``P^T A P`` in
  sparse form, so port contact stamps, guard-ring conductance patterns and
  the non-uniform vertical profile survive coarsening instead of being
  re-discretised away.
* **Smoothers** — red-black (laterally coloured) z-line Gauss-Seidel by
  default: the mesh is strongly anisotropic in z (thin surface boxes give
  vertical couplings ~50x the lateral ones), and solving each vertical line
  exactly (batched Thomas algorithm, vectorized over lines *and* right-hand
  sides) is what point smoothers cannot do there.  Weighted point Jacobi is
  available as the cheaper alternative (``mg_smoother = "jacobi"``).
* **Coarsening** is lateral-only (semicoarsening): z stays at mesh
  resolution — it is shallow (a handful of layers) and fully handled by the
  line smoother — while x and y halve per level until the system fits a
  direct coarsest-level LU.

Cycles are applied either **standalone** — iterated on the whole multi-RHS
block at once, so the Kron reduction's port columns ride one set of sparse
products — or as a symmetric **CG preconditioner** per column; ``mg_mode``
picks ("auto": blocks standalone, single vectors through CG).

Robustness is a ladder, not a hope: systems without grid geometry degrade to
the CG/ILU backend, non-SPD systems continue down its existing
reuse-LU/direct ladder, and a standalone iteration that stagnates falls back
to MG-preconditioned CG and then to LU — every rung counted in
:class:`~repro.simulator.solver.SolverStats` and logged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ...errors import SimulationError
from ...obs import get_logger, trace_span
from ..solver import _check_finite
from .backends import (
    _CG_RTOL_KEYWORD,
    IterativeSolver,
    _canonical_csc,
    register_backend,
)
from .options import BACKEND_MULTIGRID

logger = get_logger(__name__)

#: damping of the weighted-Jacobi smoother (a robust choice for 3-D stencils)
_JACOBI_WEIGHT = 0.7
#: a cycle must shrink the residual by at least this factor to count as
#: converging; _STAGNATION_CYCLES consecutive misses abandon the iteration
_STAGNATION_FACTOR = 0.9
_STAGNATION_CYCLES = 3


@dataclass(frozen=True)
class GridGeometry:
    """Structured-grid shape behind a mesh matrix.

    Node ``(ix, iy, iz)`` maps to row ``(iz * ny + iy) * nx + ix`` — the
    ordering of :meth:`repro.substrate.mesh.SubstrateMesh.node_index`.
    """

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1 or self.nz < 1:
            raise SimulationError("grid dimensions must be >= 1")

    @property
    def n_nodes(self) -> int:
        return self.nx * self.ny * self.nz


def prolongation_1d(n: int) -> sp.csr_matrix:
    """Cell-centred linear interpolation from ``ceil(n/2)`` coarse cells.

    Fine cell ``i`` sits a quarter cell off its parent ``i // 2``, so the
    interior weights are 3/4 on the parent and 1/4 on the lateral neighbour;
    at the domain boundary the neighbour weight folds into the parent
    (constant extrapolation), which preserves the row sum of 1.
    """
    nc = (n + 1) // 2
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i in range(n):
        parent = i // 2
        neighbour = parent - 1 if i % 2 == 0 else parent + 1
        if 0 <= neighbour < nc:
            rows += [i, i]
            cols += [parent, neighbour]
            vals += [0.75, 0.25]
        else:
            rows.append(i)
            cols.append(parent)
            vals.append(1.0)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, nc))


class _Level:
    """One level of the hierarchy: operator, transfers, smoother data."""

    __slots__ = ("matrix", "nxl", "nyl", "nz", "prolongation", "restriction",
                 "diag", "colours", "lu")

    def __init__(self, matrix: sp.csr_matrix, nxl: int, nyl: int, nz: int):
        self.matrix = matrix
        self.nxl = nxl
        self.nyl = nyl
        self.nz = nz
        self.prolongation = None
        self.restriction = None
        self.lu = None

    @property
    def n_lateral(self) -> int:
        return self.nxl * self.nyl

    # -- smoother preparation ------------------------------------------------

    def prepare_smoother(self, smoother: str) -> None:
        diag = self.matrix.diagonal()
        if np.any(diag <= 0.0):
            raise SimulationError(
                "multigrid level has a non-positive diagonal entry")
        self.diag = diag
        self.colours = ()
        if smoother != "rbgs":
            return
        nxy, nz = self.n_lateral, self.nz
        diag3 = diag.reshape(nz, nxy)
        if nz > 1:
            # diagonal(-nxy)[m] couples rows m+nxy and m: the (z+1, z) link
            # of lateral cell m % nxy — exactly the line sub-diagonals.
            sub = np.asarray(self.matrix.diagonal(-nxy)).reshape(nz - 1, nxy)
            sup = np.asarray(self.matrix.diagonal(nxy)).reshape(nz - 1, nxy)
        else:
            sub = np.zeros((0, nxy))
            sup = np.zeros((0, nxy))
        lateral = np.arange(nxy)
        parity = (lateral % self.nxl + lateral // self.nxl) % 2
        colours = []
        for colour in (0, 1):
            idx = np.flatnonzero(parity == colour)
            colours.append(_Colour(self.matrix, idx, nxy, nz,
                                   diag3, sub, sup))
        self.colours = tuple(colours)

    def to_single(self) -> None:
        """Demote this level's cycle operators to float32.

        A V-cycle is a preconditioner application: its ~1e-7 relative
        rounding is absorbed by the float64 outer iteration (classic
        mixed-precision iterative refinement — the outer residual is always
        computed against the float64 fine operator), while the memory-bound
        sparse kernels run ~2x faster on half-width data.  The coarsest
        direct LU stays float64; its RHS is cast around it.
        """
        if self.lu is not None:
            return
        self.matrix = self.matrix.astype(np.float32)
        self.prolongation = self.prolongation.astype(np.float32)
        self.restriction = self.restriction.astype(np.float32)
        self.diag = self.diag.astype(np.float32)
        for colour in self.colours:
            colour.to_single()

    # -- smoother sweeps -----------------------------------------------------

    def smooth(self, x: np.ndarray, b: np.ndarray, smoother: str,
               reverse: bool = False) -> None:
        """One in-place smoothing sweep (``reverse`` flips the colour order
        on post-smoothing so the cycle stays a symmetric operator)."""
        if smoother == "jacobi":
            residual = b - self.matrix @ x
            residual /= self.diag[:, None]
            residual *= _JACOBI_WEIGHT
            x += residual
            return
        x3 = x.reshape(self.nz, self.n_lateral, -1)
        colours = reversed(self.colours) if reverse else self.colours
        for colour in colours:
            colour.update(x, x3, b)


class _Colour:
    """One colour of the red-black z-line smoother on one level.

    Holds the colour's lateral cells, the row slice of the level operator
    restricted to those cells (so each half-sweep computes only its own
    residual rows — half a matvec instead of a full one), and the no-pivot
    Thomas factors of the cells' vertical-line tridiagonals.  The line blocks
    are principal submatrices of an SPD matrix, hence SPD themselves: no
    pivoting needed, the eliminated diagonal stays positive.
    """

    __slots__ = ("idx", "rows", "offline", "sup", "lmult", "dprime", "nz")

    def __init__(self, matrix: sp.csr_matrix, idx: np.ndarray, nxy: int,
                 nz: int, diag3: np.ndarray, sub: np.ndarray,
                 sup: np.ndarray):
        self.idx = idx
        self.nz = nz
        # z-major row order matches the (nz, m, k) RHS reshape below
        self.rows = (np.arange(nz)[:, None] * nxy + idx[None, :]).ravel()
        # The operator restricted to this colour's rows, minus the in-line
        # entries the tridiagonals T_i already represent (same lateral cell,
        # |dz| <= 1): the exact line solve is x_i <- T_i^{-1} (b_i - B x) in
        # one short matvec, with no separate residual pass.
        offline = sp.coo_matrix(matrix[self.rows])
        row_lateral = self.rows[offline.row] % nxy
        row_z = self.rows[offline.row] // nxy
        in_line = ((offline.col % nxy == row_lateral)
                   & (np.abs(offline.col // nxy - row_z) <= 1))
        offline.data[in_line] = 0.0
        self.offline = offline.tocsr()
        self.offline.eliminate_zeros()
        self.sup = np.ascontiguousarray(sup[:, idx])
        sub_c = np.ascontiguousarray(sub[:, idx])
        self.dprime = np.ascontiguousarray(diag3[:, idx])
        self.lmult = np.zeros_like(sub_c)
        for z in range(1, nz):
            self.lmult[z - 1] = sub_c[z - 1] / self.dprime[z - 1]
            self.dprime[z] = self.dprime[z] \
                - self.lmult[z - 1] * self.sup[z - 1]
        if np.any(self.dprime <= 0.0):
            raise SimulationError(
                "multigrid z-line elimination lost positive definiteness")

    def to_single(self) -> None:
        self.offline = self.offline.astype(np.float32)
        self.sup = self.sup.astype(np.float32)
        self.lmult = self.lmult.astype(np.float32)
        self.dprime = self.dprime.astype(np.float32)

    def update(self, x: np.ndarray, x3: np.ndarray, b: np.ndarray) -> None:
        """Exact solve of this colour's vertical lines given the rest of the
        current iterate: ``x_i <- T_i^{-1} (b_i - B x)`` (batched Thomas over
        lines and RHS columns)."""
        nz = self.nz
        m = len(self.idx)
        rhs = (b[self.rows] - self.offline @ x).reshape(nz, m, -1)
        for z in range(1, nz):
            rhs[z] -= self.lmult[z - 1][:, None] * rhs[z - 1]
        rhs[nz - 1] /= self.dprime[nz - 1][:, None]
        for z in range(nz - 2, -1, -1):
            rhs[z] = (rhs[z] - self.sup[z][:, None] * rhs[z + 1]) \
                / self.dprime[z][:, None]
        x3[:, self.idx, :] = rhs


def build_hierarchy(matrix: sp.spmatrix, grid: GridGeometry,
                    coarsest_size: int, smoother: str) -> list[_Level]:
    """Galerkin hierarchy of ``matrix`` along the lateral grid directions.

    Coarsening halves x and y per level (z is handled by the line smoother)
    until the system has at most ``coarsest_size`` nodes or a lateral
    direction drops below 4 cells; the last level holds a direct LU.
    """
    levels: list[_Level] = []
    current = sp.csr_matrix(matrix)
    current.sort_indices()
    nxl, nyl, nz = grid.nx, grid.ny, grid.nz
    while True:
        level = _Level(current, nxl, nyl, nz)
        n = current.shape[0]
        if n <= coarsest_size or min(nxl, nyl) < 4:
            try:
                level.lu = spla.splu(sp.csc_matrix(current))
            except RuntimeError as exc:
                raise SimulationError(
                    f"multigrid coarsest-level factorization failed: {exc}")
            levels.append(level)
            return levels
        level.prepare_smoother(smoother)
        p_x = prolongation_1d(nxl)
        p_y = prolongation_1d(nyl)
        prolongation = sp.kron(
            sp.kron(sp.identity(nz, format="csr"), p_y), p_x).tocsr()
        level.prolongation = prolongation
        level.restriction = prolongation.T.tocsr()
        levels.append(level)
        current = (level.restriction @ current @ prolongation).tocsr()
        current.sort_indices()
        nxl = (nxl + 1) // 2
        nyl = (nyl + 1) // 2


class _MgFactorization:
    """A prepared multigrid hierarchy exposing the usual ``solve(rhs)``.

    ``residual_history`` records the relative residual after each standalone
    cycle of the most recent solve (worst column of a multi-RHS block), so
    callers — tests, benchmarks, the obs tracer — can see convergence, not
    just a final answer.
    """

    def __init__(self, solver: "MultigridSolver", levels: list[_Level],
                 csc: sp.csc_matrix, structure):
        self.shape = csc.shape
        self._solver = solver
        self._levels = levels
        self._csc = csc
        #: float64 fine operator for outer residuals (cycles run in float32)
        self._fine = sp.csr_matrix(csc)
        self._structure = structure
        self._fallback = None
        self.residual_history: list[float] = []

    def level_sizes(self) -> list[int]:
        return [level.matrix.shape[0] for level in self._levels]

    # -- one cycle -----------------------------------------------------------

    def _cycle(self, level_index: int, b: np.ndarray) -> np.ndarray:
        """One V/W-cycle with zero initial guess; ``b`` is float32 ``(n, k)``
        (the coarsest float64 LU is cast around)."""
        level = self._levels[level_index]
        if level.lu is not None:
            return level.lu.solve(
                np.ascontiguousarray(b, dtype=np.float64)).astype(np.float32)
        options = self._solver.options
        x = np.zeros_like(b)
        for _ in range(options.mg_pre_smooth):
            level.smooth(x, b, options.mg_smoother)
        residual = b - level.matrix @ x
        coarse_rhs = level.restriction @ residual
        coarse = self._cycle(level_index + 1, coarse_rhs)
        if (options.mg_cycle == "w"
                and self._levels[level_index + 1].lu is None):
            coarse_residual = coarse_rhs \
                - self._levels[level_index + 1].matrix @ coarse
            coarse = coarse + self._cycle(level_index + 1, coarse_residual)
        x += level.prolongation @ coarse
        for _ in range(options.mg_post_smooth):
            level.smooth(x, b, options.mg_smoother, reverse=True)
        return x

    def _top_cycle(self, b: np.ndarray) -> np.ndarray:
        self._solver._bump("mg_cycles")
        return self._cycle(0, np.ascontiguousarray(b, dtype=np.float32))

    # -- solve strategies ----------------------------------------------------

    def _standalone(self, rhs: np.ndarray):
        """Iterate cycles on the whole block; returns (x, converged, history).

        Convergence is per-column relative residual, reported as the worst
        column; stagnation (three consecutive cycles shrinking the residual
        by less than 10%) abandons the iteration for the CG fallback.
        """
        options = self._solver.options
        matrix = self._fine
        norms = np.linalg.norm(rhs, axis=0)
        norms[norms == 0.0] = 1.0
        x = np.zeros_like(rhs)
        residual = rhs.copy()
        history: list[float] = []
        stagnant = 0
        for _ in range(options.mg_max_cycles):
            x += self._top_cycle(residual)
            residual = rhs - matrix @ x
            relative = float(np.max(np.linalg.norm(residual, axis=0) / norms))
            if history and relative > _STAGNATION_FACTOR * history[-1]:
                stagnant += 1
            else:
                stagnant = 0
            history.append(relative)
            if relative <= options.mg_rtol:
                return x, True, history
            if stagnant >= _STAGNATION_CYCLES or not np.isfinite(relative):
                break
        return x, False, history

    def _pcg_column(self, rhs: np.ndarray, x0: np.ndarray | None):
        """CG on one column with one V-cycle as the preconditioner."""
        options = self._solver.options

        def apply_cycle(vector: np.ndarray) -> np.ndarray:
            column = np.asarray(vector, dtype=float).reshape(-1, 1)
            return self._top_cycle(column).ravel().astype(np.float64)

        preconditioner = spla.LinearOperator(self.shape, matvec=apply_cycle,
                                             dtype=float)
        iterations = 0

        def count(_x):
            nonlocal iterations
            iterations += 1

        tolerances = {_CG_RTOL_KEYWORD: options.mg_rtol,
                      "atol": options.cg_atol}
        solution, info = spla.cg(self._fine, rhs, x0=x0,
                                 maxiter=options.cg_max_iterations
                                 or self.shape[0],
                                 M=preconditioner, callback=count,
                                 **tolerances)
        self._solver._bump("cg_iterations", iterations)
        return solution, info

    def _fallback_lu(self):
        """The ladder below multigrid: reuse-LU, then plain direct."""
        if self._fallback is None:
            self._fallback = self._solver._degraded_factorize(
                self._csc, self._structure,
                reason="multigrid did not converge")
        return self._fallback

    def _solve_real_block(self, rhs: np.ndarray) -> np.ndarray:
        if np.iscomplexobj(rhs):
            return (self._solve_real_block(np.ascontiguousarray(rhs.real))
                    + 1j * self._solve_real_block(
                        np.ascontiguousarray(rhs.imag)))
        if self._fallback is not None:
            # An earlier solve already proved multigrid stagnant here.
            return self._fallback.solve(rhs)
        options = self._solver.options
        block = np.ascontiguousarray(
            rhs if rhs.ndim == 2 else rhs.reshape(-1, 1), dtype=float)
        mode = options.mg_mode
        if mode == "auto":
            mode = "standalone" if block.shape[1] > 1 else "pcg"
        if mode == "standalone":
            with trace_span("solver.mg_solve", mode="standalone",
                            columns=block.shape[1]):
                x, converged, history = self._standalone(block)
            self.residual_history = history
            self._solver.last_residual_history = history
            if converged:
                self._solver._bump("mg_solves", block.shape[1])
                return x if rhs.ndim == 2 else x.ravel()
            logger.info(
                "solver degradation: backend=%s rung=%s reason=%s n=%d",
                self._solver.name, "mg-pcg",
                f"standalone cycles stagnated at {history[-1]:.2e}",
                self.shape[0])
            self._solver._bump("fallbacks")
        # CG per column, one V-cycle as preconditioner.
        columns = []
        with trace_span("solver.mg_solve", mode="pcg",
                        columns=block.shape[1]):
            for k in range(block.shape[1]):
                column = np.ascontiguousarray(block[:, k])
                solution, info = self._pcg_column(column, None)
                if info != 0:
                    return self._fallback_lu().solve(rhs)
                self._solver._bump("mg_solves")
                self._solver._bump("cg_solves")
                columns.append(solution)
        x = np.column_stack(columns)
        return x if rhs.ndim == 2 else x.ravel()

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise SimulationError(
                f"RHS length {rhs.shape[0]} does not match matrix size "
                f"{self.shape[0]}")
        solution = self._solve_real_block(rhs)
        self._solver._bump("solves")
        return _check_finite(solution, self._csc, self._structure)


class MultigridSolver(IterativeSolver):
    """Geometric multigrid for grid-structured SPD systems.

    The fast path needs two things: the matrix must pass the SPD screen and
    the caller must supply the :class:`GridGeometry` it was assembled on
    (the mesh/reduction layer threads it through automatically).  Everything
    else steps down an explicit, stats-recorded ladder::

        multigrid  ->  CG/ILU  ->  reuse-LU  ->  direct LU

    SPD systems without grid geometry take the CG/ILU rung (counted in
    ``stats.fallbacks``); non-SPD systems continue down the iterative
    backend's existing ladder.  A standalone cycle iteration that stagnates
    retries as MG-preconditioned CG before degrading to LU.
    """

    name = BACKEND_MULTIGRID

    def __init__(self, options=None, *, mirror_global: bool = True):
        super().__init__(options, mirror_global=mirror_global)
        #: relative-residual trajectory of the most recent standalone solve
        self.last_residual_history: list[float] = []

    def factorize(self, matrix: sp.spmatrix, structure=None, grid=None):
        if matrix.shape[0] != matrix.shape[1]:
            raise SimulationError("MNA matrix must be square")
        if matrix.shape[0] == 0:
            return super().factorize(matrix, structure=structure)
        csc = _canonical_csc(matrix)
        grid_ok = (isinstance(grid, GridGeometry)
                   and grid.n_nodes == csc.shape[0])
        if not grid_ok or not self._spd_candidate(csc):
            if not grid_ok and self._spd_candidate(csc):
                # SPD but gridless: the CG/ILU rung will solve it — record
                # the degradation (non-SPD systems are counted by the
                # iterative backend's own ladder instead).
                if not self.options.iterative_fallback:
                    raise SimulationError(
                        "no grid geometry supplied for the multigrid backend "
                        "and iterative_fallback is disabled")
                self._bump("fallbacks")
                logger.info(
                    "solver degradation: backend=%s rung=%s reason=%s n=%d",
                    self.name, "iterative", "no grid geometry supplied",
                    csc.shape[0])
            return super().factorize(csc, structure=structure)
        options = self.options
        try:
            with trace_span("solver.mg_setup", nodes=csc.shape[0],
                            nx=grid.nx, ny=grid.ny, nz=grid.nz):
                levels = build_hierarchy(csc, grid, options.mg_coarsest_size,
                                         options.mg_smoother)
                # Built in float64 (Galerkin products, Thomas positivity
                # checks), applied in float32 (see _Level.to_single).
                for level in levels:
                    level.to_single()
        except SimulationError as exc:
            # Hierarchy construction itself failed (e.g. a pathological
            # operator): one rung down to CG/ILU.
            self._bump("fallbacks")
            logger.warning(
                "solver degradation: backend=%s rung=%s reason=%s n=%d",
                self.name, "iterative", f"hierarchy setup failed: {exc}",
                csc.shape[0])
            return super().factorize(csc, structure=structure)
        self._bump("factorizations")
        return _MgFactorization(self, levels, csc, structure)


register_backend(BACKEND_MULTIGRID, MultigridSolver)
