"""Declarative configuration of the pluggable linear-solver layer.

:class:`SolverOptions` is the one object that travels from campaign configs
(the ``[solver]`` TOML table) down through :class:`~repro.core.flow.FlowOptions`
into every analysis: it picks the backend, carries the iterative tolerances
and the per-frequency AC fan-out width, and — because it is a plain frozen
dataclass of primitives — participates in the studies extraction-cache key
and the persisted result sidecars without any extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import SimulationError

#: Direct sparse LU (SuperLU) — the reference backend, always correct.
BACKEND_DIRECT = "direct"
#: LU that reuses the fill-reducing column ordering across factorizations of
#: the same sparsity pattern (Newton iterations, transient steps, V_tune and
#: frequency points), redoing only the numeric work.
BACKEND_REUSE_LU = "reuse-lu"
#: Preconditioned conjugate gradients for SPD systems (the substrate mesh
#: Laplacian), with automatic fallback to direct LU on non-SPD systems or
#: CG breakdown.
BACKEND_ITERATIVE = "iterative"
#: Geometric multigrid on the structured (nx, ny, nz) substrate grid:
#: Galerkin-coarsened V/W-cycles used standalone on multi-RHS blocks or as a
#: CG preconditioner, degrading to CG/ILU (then LU) on non-grid or non-SPD
#: systems.
BACKEND_MULTIGRID = "multigrid"

BACKENDS = (BACKEND_DIRECT, BACKEND_REUSE_LU, BACKEND_ITERATIVE,
            BACKEND_MULTIGRID)

#: Preconditioner choices of the iterative backend.  "auto" resolves to AMG
#: when :mod:`pyamg` is importable and incomplete-LU otherwise.
PRECONDITIONERS = ("auto", "amg", "ilu", "jacobi", "none")

#: Smoother choices of the multigrid backend: red-black (laterally coloured)
#: z-line Gauss-Seidel — robust against the mesh's strong vertical
#: anisotropy (thin surface boxes) — or weighted point Jacobi.
MG_SMOOTHERS = ("rbgs", "jacobi")
#: Multigrid cycle shapes.
MG_CYCLES = ("v", "w")
#: How multigrid cycles are applied: "standalone" iterates cycles on the
#: whole (possibly multi-RHS) block, "pcg" runs CG per column with one cycle
#: as the preconditioner, "auto" picks standalone for blocks and pcg for
#: single vectors.
MG_MODES = ("auto", "standalone", "pcg")

#: How ``ac_workers`` shards the frequency points of one AC sweep:
#: "thread" fans out over worker threads inside the calling process (the
#: historical behaviour, zero setup cost), "process" ships frequency blocks
#: to the shared worker-process pool through shared memory (sidesteps the
#: GIL on the pure-python assembly; falls back to threads inside a pool
#: worker, where nesting executors is forbidden).
AC_MODES = ("thread", "process")


@dataclass(frozen=True)
class SolverOptions:
    """Backend choice and tuning knobs of the linear-solver layer.

    The defaults reproduce the historical behaviour exactly: direct LU
    everywhere, serial AC sweeps, analysis-supplied gmin.

    ``ac_workers``, ``ac_mode`` and ``max_cached_patterns`` are pure
    parallelism / memory knobs with no influence on results — the process
    fan-out is bit-identical to the serial sweep by construction — so they
    are excluded from content fingerprints (extraction-cache keys, campaign
    resume identity) via ``__fingerprint_exclude__``.  Every future
    scheduler knob must join this tuple: parallelism must never invalidate
    the extraction cache.
    """

    __fingerprint_exclude__ = ("ac_workers", "ac_mode", "max_cached_patterns")

    #: one of :data:`BACKENDS`
    backend: str = BACKEND_DIRECT
    #: overrides the per-analysis gmin regularisation when set (siemens)
    gmin: float | None = None
    #: relative CG convergence tolerance (residual norm)
    cg_rtol: float = 1e-13
    #: absolute CG convergence tolerance
    cg_atol: float = 0.0
    #: CG iteration cap; 0 means the system size ``n``
    cg_max_iterations: int = 0
    #: one of :data:`PRECONDITIONERS`
    preconditioner: str = "auto"
    #: drop tolerance of the incomplete-LU preconditioner
    ilu_drop_tol: float = 1e-5
    #: fill factor of the incomplete-LU preconditioner
    ilu_fill_factor: float = 20.0
    #: fall back to direct LU on non-SPD systems / CG breakdown (recommended);
    #: when False those cases raise :class:`~repro.errors.SimulationError`
    iterative_fallback: bool = True
    #: symbolic analyses the reuse-lu backend keeps cached (LRU)
    max_cached_patterns: int = 8
    #: workers sharding the frequency points of one AC sweep
    ac_workers: int = 1
    #: executor of the AC fan-out, one of :data:`AC_MODES`
    ac_mode: str = "thread"
    #: multigrid cycle shape, one of :data:`MG_CYCLES`
    mg_cycle: str = "v"
    #: multigrid smoother, one of :data:`MG_SMOOTHERS`
    mg_smoother: str = "rbgs"
    #: pre-smoothing sweeps per multigrid cycle
    mg_pre_smooth: int = 2
    #: post-smoothing sweeps per multigrid cycle
    mg_post_smooth: int = 1
    #: stop coarsening once a level has at most this many nodes (direct LU)
    mg_coarsest_size: int = 800
    #: cap on multigrid cycles per solve before falling down the ladder
    mg_max_cycles: int = 60
    #: relative residual target of the multigrid solve
    mg_rtol: float = 1e-12
    #: cycle application, one of :data:`MG_MODES`
    mg_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise SimulationError(
                f"unknown solver backend {self.backend!r}; "
                f"choose one of {', '.join(BACKENDS)}")
        if self.preconditioner not in PRECONDITIONERS:
            raise SimulationError(
                f"unknown preconditioner {self.preconditioner!r}; "
                f"choose one of {', '.join(PRECONDITIONERS)}")
        if self.gmin is not None and self.gmin < 0.0:
            raise SimulationError("solver gmin must be >= 0")
        if self.cg_rtol <= 0.0:
            raise SimulationError("cg_rtol must be positive")
        if self.cg_atol < 0.0:
            raise SimulationError("cg_atol must be >= 0")
        if self.cg_max_iterations < 0:
            raise SimulationError("cg_max_iterations must be >= 0")
        if self.ilu_fill_factor < 1.0:
            raise SimulationError("ilu_fill_factor must be >= 1")
        if self.max_cached_patterns < 1:
            raise SimulationError("max_cached_patterns must be >= 1")
        if self.ac_workers < 1:
            raise SimulationError("ac_workers must be >= 1")
        if self.ac_mode not in AC_MODES:
            raise SimulationError(
                f"unknown ac_mode {self.ac_mode!r}; "
                f"choose one of {', '.join(AC_MODES)}")
        if self.mg_cycle not in MG_CYCLES:
            raise SimulationError(
                f"unknown mg_cycle {self.mg_cycle!r}; "
                f"choose one of {', '.join(MG_CYCLES)}")
        if self.mg_smoother not in MG_SMOOTHERS:
            raise SimulationError(
                f"unknown mg_smoother {self.mg_smoother!r}; "
                f"choose one of {', '.join(MG_SMOOTHERS)}")
        if self.mg_mode not in MG_MODES:
            raise SimulationError(
                f"unknown mg_mode {self.mg_mode!r}; "
                f"choose one of {', '.join(MG_MODES)}")
        if self.mg_pre_smooth < 0 or self.mg_post_smooth < 0:
            raise SimulationError("mg_pre_smooth/mg_post_smooth must be >= 0")
        if self.mg_pre_smooth + self.mg_post_smooth < 1:
            raise SimulationError(
                "at least one smoothing sweep per multigrid cycle is required")
        if self.mg_coarsest_size < 1:
            raise SimulationError("mg_coarsest_size must be >= 1")
        if self.mg_max_cycles < 1:
            raise SimulationError("mg_max_cycles must be >= 1")
        if self.mg_rtol <= 0.0:
            raise SimulationError("mg_rtol must be positive")

    def effective_gmin(self, analysis_default: float) -> float:
        """The gmin to use: this object's override, or the analysis default."""
        return analysis_default if self.gmin is None else self.gmin
