"""Sparse linear-solver core: cached factorizations and shared patterns.

The solver layer owns everything between "here is an assembled MNA system"
and "here is the solution vector":

* :class:`Factorization` — one LU factorization of a sparse matrix, reusable
  for any number of right-hand sides (single vectors or multi-RHS blocks).
  Linear transient analysis has a constant left-hand side and factorizes
  exactly once for the whole time grid; the substrate Kron reduction solves
  its internal block against all port columns in a single call.
* :class:`SharedPatternPair` — ``G`` and ``C`` expanded onto one shared CSC
  sparsity pattern so an AC sweep can assemble ``G + s*C`` per frequency by
  combining ``.data`` arrays in place, never reallocating matrix structure.
* :func:`solve_sparse` — one-shot solve with proper singular-matrix
  diagnostics: :class:`scipy.sparse.linalg.MatrixRankWarning` is promoted to
  :class:`~repro.errors.SimulationError` (naming the offending node when the
  MNA structure is available) and a finite-check backstop catches anything
  that slips through.
* :func:`add_gmin_diagonal` — the vectorized "gmin from every node to
  ground" regularisation shared by the DC, AC and transient analyses.

A module-level :data:`stats` counter records factorizations and solves so
tests (and benchmarks) can assert the caching behaviour — e.g. that a linear
transient performs exactly one factorization regardless of step count.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SimulationError


@dataclass
class SolverStats:
    """Counters of the expensive solver operations (for tests / benchmarks)."""

    factorizations: int = 0
    solves: int = 0

    def reset(self) -> None:
        self.factorizations = 0
        self.solves = 0


#: Global solver counters; ``stats.reset()`` before a run to measure it.
stats = SolverStats()


def _row_names(rows: np.ndarray, structure) -> list[str]:
    """Best-effort mapping of MNA row indices to node / branch names."""
    if structure is None:
        return [f"row {int(row)}" for row in rows]
    inverse: dict[int, str] = {}
    for name, row in structure.node_index.items():
        inverse[row] = f"node {name!r}"
    for name, row in structure.branch_index.items():
        inverse[row] = f"branch {name!r}"
    return [inverse.get(int(row), f"row {int(row)}") for row in rows]


def _singular_hint(matrix: sp.spmatrix, structure=None, limit: int = 3) -> str:
    """Describe structurally empty rows (floating nodes) of a singular matrix."""
    csr = sp.csr_matrix(matrix)
    row_abs_sum = np.asarray(abs(csr).sum(axis=1)).ravel()
    bad = np.flatnonzero(row_abs_sum == 0.0)
    if bad.size == 0:
        return ""
    names = ", ".join(_row_names(bad[:limit], structure))
    suffix = ", ..." if bad.size > limit else ""
    return f" (all-zero matrix row for {names}{suffix} — floating node?)"


def _check_finite(solution: np.ndarray, matrix: sp.spmatrix,
                  structure=None) -> np.ndarray:
    if not np.all(np.isfinite(solution)):
        raise SimulationError(
            "MNA solution contains non-finite values (singular matrix or "
            "floating node)" + _singular_hint(matrix, structure))
    return solution


class Factorization:
    """One LU factorization of a square sparse matrix, reusable across solves.

    ``solve`` accepts a single right-hand side vector or a dense ``(n, k)``
    multi-RHS block, real or complex (a complex RHS against a real
    factorization is solved as two real solves).
    """

    def __init__(self, matrix: sp.spmatrix, structure=None):
        if matrix.shape[0] != matrix.shape[1]:
            raise SimulationError("MNA matrix must be square")
        self.shape = matrix.shape
        self._structure = structure
        self._matrix = sp.csc_matrix(matrix)
        self._complex = np.iscomplexobj(self._matrix.data)
        if self.shape[0] == 0:
            self._lu = None
        else:
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("error", spla.MatrixRankWarning)
                    self._lu = spla.splu(self._matrix)
            except (RuntimeError, spla.MatrixRankWarning) as exc:
                raise SimulationError(
                    f"sparse factorization failed: {exc}"
                    + _singular_hint(self._matrix, structure)) from exc
        stats.factorizations += 1

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` using the cached factorization."""
        rhs = np.asarray(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise SimulationError(
                f"RHS length {rhs.shape[0]} does not match matrix size "
                f"{self.shape[0]}")
        if self._lu is None:
            return np.zeros_like(rhs)
        if np.iscomplexobj(rhs) and not self._complex:
            solution = (self._lu.solve(np.ascontiguousarray(rhs.real))
                        + 1j * self._lu.solve(np.ascontiguousarray(rhs.imag)))
        else:
            solution = self._lu.solve(np.ascontiguousarray(rhs))
        stats.solves += 1
        return _check_finite(solution, self._matrix, self._structure)


def factorize(matrix: sp.spmatrix, structure=None) -> Factorization:
    """Factorize ``matrix`` once for reuse over many right-hand sides."""
    return Factorization(matrix, structure=structure)


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray,
                 structure=None) -> np.ndarray:
    """One-shot sparse solve raising :class:`SimulationError` on failure.

    ``spsolve`` signals singular matrices via ``MatrixRankWarning`` plus a
    NaN-filled result rather than an exception; the warning is promoted to a
    :class:`SimulationError` naming the offending node when ``structure``
    (an :class:`~repro.simulator.mna.MnaStructure`) is available.  The
    finite-check stays as a backstop for near-singular systems that solve
    without warning.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise SimulationError("MNA matrix must be square")
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=rhs.dtype)
    csc = sp.csc_matrix(matrix)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("error", spla.MatrixRankWarning)
            solution = spla.spsolve(csc, rhs)
    except spla.MatrixRankWarning as exc:
        raise SimulationError(
            "sparse solve failed: matrix is singular"
            + _singular_hint(csc, structure)) from exc
    except RuntimeError as exc:
        raise SimulationError(f"sparse solve failed: {exc}"
                              + _singular_hint(csc, structure)) from exc
    stats.solves += 1
    solution = np.atleast_1d(solution)
    return _check_finite(solution, csc, structure)


def add_gmin_diagonal(matrix: sp.spmatrix, n_nodes: int,
                      gmin: float) -> sp.csr_matrix:
    """Add ``gmin`` from every node to ground in one vectorized operation.

    Only the first ``n_nodes`` rows (the node equations) receive the shunt;
    branch-current rows are left untouched.  Returns CSR.
    """
    if gmin <= 0.0 or n_nodes <= 0:
        return sp.csr_matrix(matrix)
    diagonal = np.zeros(matrix.shape[0])
    diagonal[:n_nodes] = gmin
    return (sp.csr_matrix(matrix) + sp.diags(diagonal, format="csr")).tocsr()


class SharedPatternPair:
    """``G`` and ``C`` expanded onto one shared CSC sparsity pattern.

    :meth:`assemble` builds ``G + s*C`` for any complex frequency ``s`` by
    writing into the ``.data`` array of a single preallocated matrix — no
    sparse additions, conversions or structure allocations per frequency
    point, which is what makes dense AC sweeps cheap.
    """

    def __init__(self, g_matrix: sp.spmatrix, c_matrix: sp.spmatrix):
        if g_matrix.shape != c_matrix.shape:
            raise SimulationError("G and C must have the same shape")
        g = self._canonical(g_matrix)
        c = self._canonical(c_matrix)
        # Union sparsity pattern via |G| + |C|: abs prevents cancellation, so
        # every slot that is nonzero in either matrix survives the addition.
        union = sp.csc_matrix(abs(g) + abs(c))
        union.sort_indices()
        n_rows = union.shape[0]
        union_cols = np.repeat(np.arange(union.shape[1], dtype=np.int64),
                               np.diff(union.indptr))
        union_keys = union_cols * n_rows + union.indices
        self.g_data = self._aligned_data(g, union, union_keys)
        self.c_data = self._aligned_data(c, union, union_keys)
        self._matrix = sp.csc_matrix(
            (np.zeros(union.nnz, dtype=complex), union.indices, union.indptr),
            shape=union.shape)

    @staticmethod
    def _canonical(matrix: sp.spmatrix) -> sp.csc_matrix:
        csc = sp.csc_matrix(matrix).copy()
        csc.sum_duplicates()
        csc.eliminate_zeros()
        csc.sort_indices()
        return csc

    @staticmethod
    def _aligned_data(matrix: sp.csc_matrix, union: sp.csc_matrix,
                      union_keys: np.ndarray) -> np.ndarray:
        """Scatter ``matrix.data`` into the slots of the union pattern.

        Both matrices are canonical CSC, so their (column, row) keys are
        sorted and the matrix's pattern is a subset of the union's; a single
        ``searchsorted`` finds every slot.
        """
        cols = np.repeat(np.arange(matrix.shape[1], dtype=np.int64),
                         np.diff(matrix.indptr))
        keys = cols * matrix.shape[0] + matrix.indices
        data = np.zeros(union.nnz)
        data[np.searchsorted(union_keys, keys)] = matrix.data
        return data

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    def assemble(self, s: complex) -> sp.csc_matrix:
        """Return ``G + s*C`` on the shared pattern (in-place data update)."""
        np.multiply(self.c_data, s, out=self._matrix.data)
        self._matrix.data += self.g_data
        return self._matrix
