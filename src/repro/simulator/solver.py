"""Sparse linear-solver core: cached factorizations and shared patterns.

The solver layer owns everything between "here is an assembled MNA system"
and "here is the solution vector":

* :class:`Factorization` — one LU factorization of a sparse matrix, reusable
  for any number of right-hand sides (single vectors or multi-RHS blocks).
  Linear transient analysis has a constant left-hand side and factorizes
  exactly once for the whole time grid; the substrate Kron reduction solves
  its internal block against all port columns in a single call.
* :class:`SharedPatternPair` — ``G`` and ``C`` expanded onto one shared CSC
  sparsity pattern so an AC sweep can assemble ``G + s*C`` per frequency by
  combining ``.data`` arrays in place, never reallocating matrix structure.
* :func:`solve_sparse` — one-shot solve with proper singular-matrix
  diagnostics: an exactly singular factorization becomes a
  :class:`~repro.errors.SimulationError` (naming the offending node when the
  MNA structure is available) and a finite-check backstop catches anything
  that slips through.  No warnings-filter mutation anywhere in the layer —
  the interpreter-global filter list is not thread-safe, and the AC
  per-frequency fan-out solves from worker threads.
* :func:`add_gmin_diagonal` — the vectorized "gmin from every node to
  ground" regularisation shared by the DC, AC and transient analyses.

A module-level :data:`stats` counter records factorizations and solves so
tests (and benchmarks) can assert the caching behaviour — e.g. that a linear
transient performs exactly one factorization regardless of step count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SimulationError
from ..obs import trace_span


@dataclass
class SolverStats:
    """Counters of the expensive solver operations (for tests / benchmarks).

    Every :class:`~repro.simulator.linalg.LinearSolver` instance owns one of
    these, so parallel workers (e.g. the per-frequency AC fan-out) each count
    into their own instance and are aggregated afterwards with :meth:`merge`
    instead of racing on a shared global.  ``backend`` names the solver
    backend that produced the counts; the iterative backend additionally
    records its CG traffic and direct-LU fallbacks.
    """

    factorizations: int = 0     #: numeric factorizations (LU or precond setup)
    solves: int = 0             #: triangular / CG solve calls
    pattern_reuses: int = 0     #: value-only refactorizations (reuse-lu)
    cg_solves: int = 0          #: right-hand sides solved by CG
    cg_iterations: int = 0      #: total CG iterations over all solves
    mg_solves: int = 0          #: right-hand sides solved by multigrid
    mg_cycles: int = 0          #: multigrid cycles (standalone + precond apply)
    fallbacks: int = 0          #: iterative/multigrid requests degraded a rung
    fallback_direct: int = 0    #: degradations that had to reach plain direct LU
    dc_gmin_steps: int = 0      #: gmin-continuation rungs taken by DC Newton
    dc_source_steps: int = 0    #: source-stepping rungs taken by DC Newton
    backend: str = ""           #: backend name ("" for the module-level global)

    _COUNTERS = ("factorizations", "solves", "pattern_reuses",
                 "cg_solves", "cg_iterations", "mg_solves", "mg_cycles",
                 "fallbacks", "fallback_direct",
                 "dc_gmin_steps", "dc_source_steps")

    #: The subset of counters that record *graceful degradation* — a solve or
    #: analysis that only succeeded by stepping down the robustness ladder
    #: (iterative -> reuse-LU -> direct, plain Newton -> gmin stepping ->
    #: source stepping).  Campaign runners snapshot these around each task and
    #: surface non-zero deltas in result sidecars.
    DEGRADATION_COUNTERS = ("fallbacks", "fallback_direct",
                            "dc_gmin_steps", "dc_source_steps")

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def merge(self, other: "SolverStats") -> None:
        """Fold a worker's counters into this instance (``backend`` is kept)."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int | str]:
        record: dict[str, int | str] = {name: getattr(self, name)
                                        for name in self._COUNTERS}
        record["backend"] = self.backend
        return record


#: Global solver counters; ``stats.reset()`` before a run to measure it.
#: Solver instances mirror their counts here (single-threaded paths only);
#: fan-out workers use per-instance stats merged at the end instead.
stats = SolverStats()


def _row_names(rows: np.ndarray, structure) -> list[str]:
    """Best-effort mapping of MNA row indices to node / branch names."""
    if structure is None:
        return [f"row {int(row)}" for row in rows]
    inverse: dict[int, str] = {}
    for name, row in structure.node_index.items():
        inverse[row] = f"node {name!r}"
    for name, row in structure.branch_index.items():
        inverse[row] = f"branch {name!r}"
    return [inverse.get(int(row), f"row {int(row)}") for row in rows]


def _singular_hint(matrix: sp.spmatrix, structure=None, limit: int = 3) -> str:
    """Describe structurally empty rows (floating nodes) of a singular matrix."""
    csr = sp.csr_matrix(matrix)
    row_abs_sum = np.asarray(abs(csr).sum(axis=1)).ravel()
    bad = np.flatnonzero(row_abs_sum == 0.0)
    if bad.size == 0:
        return ""
    names = ", ".join(_row_names(bad[:limit], structure))
    suffix = ", ..." if bad.size > limit else ""
    return f" (all-zero matrix row for {names}{suffix} — floating node?)"


def _check_finite(solution: np.ndarray, matrix: sp.spmatrix,
                  structure=None) -> np.ndarray:
    if not np.all(np.isfinite(solution)):
        raise SimulationError(
            "MNA solution contains non-finite values (singular matrix or "
            "floating node)" + _singular_hint(matrix, structure))
    return solution


class Factorization:
    """One LU factorization of a square sparse matrix, reusable across solves.

    ``solve`` accepts a single right-hand side vector or a dense ``(n, k)``
    multi-RHS block, real or complex (a complex RHS against a real
    factorization is solved as two real solves).
    """

    def __init__(self, matrix: sp.spmatrix, structure=None,
                 sinks: tuple[SolverStats, ...] | None = None):
        if matrix.shape[0] != matrix.shape[1]:
            raise SimulationError("MNA matrix must be square")
        self.shape = matrix.shape
        self._structure = structure
        self._sinks = (stats,) if sinks is None else tuple(sinks)
        self._matrix = sp.csc_matrix(matrix)
        self._complex = np.iscomplexobj(self._matrix.data)
        if self.shape[0] == 0:
            self._lu = None
        else:
            # splu signals an exactly singular matrix with a RuntimeError
            # (no warning machinery involved — the solver layer must stay
            # free of warnings-filter mutation, which is interpreter-global
            # and not thread-safe under the per-frequency AC fan-out).
            try:
                with trace_span("solver.factorize"):
                    self._lu = spla.splu(self._matrix)
            except RuntimeError as exc:
                raise SimulationError(
                    f"sparse factorization failed: {exc}"
                    + _singular_hint(self._matrix, structure)) from exc
        for sink in self._sinks:
            sink.factorizations += 1

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` using the cached factorization."""
        rhs = np.asarray(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise SimulationError(
                f"RHS length {rhs.shape[0]} does not match matrix size "
                f"{self.shape[0]}")
        if self._lu is None:
            return np.zeros_like(rhs)
        with trace_span("solver.solve"):
            if np.iscomplexobj(rhs) and not self._complex:
                solution = (self._lu.solve(np.ascontiguousarray(rhs.real))
                            + 1j * self._lu.solve(
                                np.ascontiguousarray(rhs.imag)))
            else:
                if self._complex and not np.iscomplexobj(rhs):
                    rhs = rhs.astype(complex)
                solution = self._lu.solve(np.ascontiguousarray(rhs))
        for sink in self._sinks:
            sink.solves += 1
        return _check_finite(solution, self._matrix, self._structure)


def factorize(matrix: sp.spmatrix, structure=None) -> Factorization:
    """Factorize ``matrix`` once for reuse over many right-hand sides."""
    return Factorization(matrix, structure=structure)


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray,
                 structure=None,
                 sinks: tuple[SolverStats, ...] | None = None) -> np.ndarray:
    """One-shot sparse solve raising :class:`SimulationError` on failure.

    An exactly singular matrix fails the factorization with a
    :class:`SimulationError` naming the offending node when ``structure``
    (an :class:`~repro.simulator.mna.MnaStructure`) is available; the
    finite-check stays as a backstop for near-singular systems that solve
    without error.  Counts one ``solve`` (and no ``factorization``) in the
    stats, matching the historical one-shot-solve semantics.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise SimulationError("MNA matrix must be square")
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=rhs.dtype)
    solution = Factorization(matrix, structure=structure, sinks=()).solve(rhs)
    for sink in (stats,) if sinks is None else sinks:
        sink.solves += 1
    return np.atleast_1d(solution)


def gmin_diagonal(size: int, n_nodes: int,
                  gmin: float) -> sp.csr_matrix | None:
    """The reusable ``gmin``-to-ground diagonal matrix, or ``None`` for a no-op.

    Newton loops build this once and add it per iteration, so the
    regularisation costs one CSR addition per solve instead of a format
    conversion plus diagonal construction (which matters once the
    reuse-pattern LU backend has made refactorizations cheap).
    """
    if gmin <= 0.0 or n_nodes <= 0:
        return None
    diagonal = np.zeros(size)
    diagonal[:n_nodes] = gmin
    return sp.diags(diagonal, format="csr")


def add_gmin_diagonal(matrix: sp.spmatrix, n_nodes: int,
                      gmin: float) -> sp.csr_matrix:
    """Add ``gmin`` from every node to ground in one vectorized operation.

    Only the first ``n_nodes`` rows (the node equations) receive the shunt;
    branch-current rows are left untouched.  Returns CSR; a matrix that is
    already CSR is not re-canonicalized (the no-op path returns it as-is).
    """
    base = matrix if sp.issparse(matrix) and matrix.format == "csr" \
        else sp.csr_matrix(matrix)
    diagonal = gmin_diagonal(matrix.shape[0], n_nodes, gmin)
    if diagonal is None:
        return base
    return base + diagonal


class SharedPatternPair:
    """``G`` and ``C`` expanded onto one shared CSC sparsity pattern.

    :meth:`assemble` builds ``G + s*C`` for any complex frequency ``s`` by
    writing into the ``.data`` array of a single preallocated matrix — no
    sparse additions, conversions or structure allocations per frequency
    point, which is what makes dense AC sweeps cheap.
    """

    def __init__(self, g_matrix: sp.spmatrix, c_matrix: sp.spmatrix):
        if g_matrix.shape != c_matrix.shape:
            raise SimulationError("G and C must have the same shape")
        g = self._canonical(g_matrix)
        c = self._canonical(c_matrix)
        # Union sparsity pattern via |G| + |C|: abs prevents cancellation, so
        # every slot that is nonzero in either matrix survives the addition.
        union = sp.csc_matrix(abs(g) + abs(c))
        union.sort_indices()
        n_rows = union.shape[0]
        union_cols = np.repeat(np.arange(union.shape[1], dtype=np.int64),
                               np.diff(union.indptr))
        union_keys = union_cols * n_rows + union.indices
        self.g_data = self._aligned_data(g, union, union_keys)
        self.c_data = self._aligned_data(c, union, union_keys)
        self._matrix = sp.csc_matrix(
            (np.zeros(union.nnz, dtype=complex), union.indices, union.indptr),
            shape=union.shape)

    @staticmethod
    def _canonical(matrix: sp.spmatrix) -> sp.csc_matrix:
        csc = sp.csc_matrix(matrix).copy()
        csc.sum_duplicates()
        csc.eliminate_zeros()
        csc.sort_indices()
        return csc

    @staticmethod
    def _aligned_data(matrix: sp.csc_matrix, union: sp.csc_matrix,
                      union_keys: np.ndarray) -> np.ndarray:
        """Scatter ``matrix.data`` into the slots of the union pattern.

        Both matrices are canonical CSC, so their (column, row) keys are
        sorted and the matrix's pattern is a subset of the union's; a single
        ``searchsorted`` finds every slot.
        """
        cols = np.repeat(np.arange(matrix.shape[1], dtype=np.int64),
                         np.diff(matrix.indptr))
        keys = cols * matrix.shape[0] + matrix.indices
        data = np.zeros(union.nnz)
        data[np.searchsorted(union_keys, keys)] = matrix.data
        return data

    @classmethod
    def from_arrays(cls, g_data: np.ndarray, c_data: np.ndarray,
                    indices: np.ndarray, indptr: np.ndarray,
                    shape: tuple[int, int]) -> "SharedPatternPair":
        """Rehydrate a pair from its raw CSC arrays (already canonical).

        This is the zero-copy entry point of the process-level frequency
        fan-out: a worker attaches the parent's shared-memory views of
        ``g_data``/``c_data``/``indices``/``indptr`` and rebuilds the pair
        without re-deriving the union pattern — only the per-worker complex
        assembly buffer is allocated.  The arrays are used as-is (views are
        fine); callers must not mutate them afterwards.
        """
        pair = object.__new__(cls)
        pair.g_data = g_data
        pair.c_data = c_data
        pair._matrix = sp.csc_matrix(
            (np.zeros(len(g_data), dtype=complex), indices, indptr),
            shape=shape)
        return pair

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    @property
    def csc_indices(self) -> np.ndarray:
        """Row indices of the shared CSC pattern (what workers need to ship)."""
        return self._matrix.indices

    @property
    def csc_indptr(self) -> np.ndarray:
        """Column pointers of the shared CSC pattern."""
        return self._matrix.indptr

    def assemble(self, s: complex) -> sp.csc_matrix:
        """Return ``G + s*C`` on the shared pattern (in-place data update)."""
        np.multiply(self.c_data, s, out=self._matrix.data)
        self._matrix.data += self.g_data
        return self._matrix

    def with_private_buffer(self) -> "SharedPatternPair":
        """A clone whose :meth:`assemble` writes into its own data buffer.

        The (immutable) ``g_data`` / ``c_data`` arrays and the sparsity
        structure are shared with the parent; only the assembly target is
        fresh.  This is what lets the per-frequency AC fan-out hand each
        worker thread its own assembly scratch without re-deriving the union
        pattern.
        """
        clone = object.__new__(SharedPatternPair)
        clone.g_data = self.g_data
        clone.c_data = self.c_data
        clone._matrix = sp.csc_matrix(
            (np.zeros(self._matrix.nnz, dtype=complex),
             self._matrix.indices, self._matrix.indptr),
            shape=self._matrix.shape)
        return clone
