"""Small-signal AC analysis.

The circuit is linearised around a DC operating point, then the complex MNA
system ``(G + j*omega*C) x = b`` is solved at every requested frequency with
the AC phasors of the independent sources on the right-hand side.

This is the analysis used throughout the reproduction to compute the transfer
from the substrate-noise injection source to the sensitive nodes of the
circuit (back-gates, on-chip ground, tank nodes, output).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..netlist.circuit import Circuit
from ..netlist.elements import CurrentSource, VoltageSource
from .dc import DcOptions, DcSolution, dc_operating_point
from .linalg import LinearSolver, SolverOptions, resolve_solver
from .mna import MnaStructure, SolutionView, stamp_linear_elements
from .solver import SharedPatternPair, add_gmin_diagonal


@dataclass
class AcSolution:
    """Frequency-sweep result: complex node voltages at every frequency."""

    circuit: Circuit
    structure: MnaStructure
    frequencies: np.ndarray              #: shape (F,)
    vectors: np.ndarray                  #: shape (F, size), complex

    def voltage(self, node: str) -> np.ndarray:
        """Complex voltage phasor of ``node`` at every frequency."""
        row = self.structure.node_row(node)
        if row is None:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.vectors[:, row]

    def voltage_between(self, node_p: str, node_n: str) -> np.ndarray:
        return self.voltage(node_p) - self.voltage(node_n)

    def magnitude_db(self, node: str, reference: float = 1.0) -> np.ndarray:
        """Voltage magnitude in dB relative to ``reference`` volts."""
        magnitude = np.abs(self.voltage(node))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-30) / reference)

    def branch_current(self, branch: str) -> np.ndarray:
        return self.vectors[:, self.structure.branch_row(branch)]

    def at_frequency(self, frequency: float) -> SolutionView:
        """Solution view at the frequency point closest to ``frequency``."""
        index = int(np.argmin(np.abs(self.frequencies - frequency)))
        return SolutionView(self.structure, self.vectors[index])


def _small_signal_matrices(circuit: Circuit, structure: MnaStructure,
                           operating_point: DcSolution | None):
    """Build (G, C) with all nonlinear elements replaced by their linearisation."""
    stamper = stamp_linear_elements(circuit, structure)
    nonlinear = circuit.nonlinear_elements()
    if nonlinear:
        if operating_point is None:
            raise SimulationError(
                "circuit contains nonlinear elements: an operating point is required")
        voltages = operating_point.voltages()
        for element in nonlinear:
            element.stamp_small_signal(stamper, voltages)
    return stamper.conductance_matrix(), stamper.capacitance_matrix()


def _ac_rhs(circuit: Circuit, structure: MnaStructure) -> np.ndarray:
    """Right-hand side holding the AC phasors of the independent sources."""
    rhs = np.zeros(structure.size, dtype=complex)
    for element in circuit.sources():
        if isinstance(element, VoltageSource):
            rhs[structure.branch_row(element.name)] = element.value.ac_phasor
        elif isinstance(element, CurrentSource):
            phasor = element.value.ac_phasor
            row_p = structure.node_row(element.node_p)
            row_n = structure.node_row(element.node_n)
            if row_p is not None:
                rhs[row_p] -= phasor
            if row_n is not None:
                rhs[row_n] += phasor
    return rhs


def run_frequency_points(pattern: SharedPatternPair, frequencies: np.ndarray,
                         solver: LinearSolver, per_point, *,
                         rhs: np.ndarray | None = None,
                         out: np.ndarray | None = None,
                         multi_rhs: bool = False) -> None:
    """Evaluate ``per_point(solver_like, matrix, index)`` at every frequency.

    With ``solver.options.ac_workers > 1`` the frequency points are sharded
    across that many workers: each worker gets a private assembly buffer
    (:meth:`SharedPatternPair.with_private_buffer`) and a
    :meth:`~repro.simulator.linalg.LinearSolver.spawn`-ed solver clone whose
    stats are merged back afterwards, so results and counters are identical
    to the serial sweep whichever width runs it.  ``per_point`` writes its
    result into caller-owned storage indexed by ``index``; the points are
    independent, so write order does not matter.

    ``rhs``/``out``/``multi_rhs`` describe the sweep declaratively for the
    process-level fan-out (``solver.options.ac_mode == "process"``): closures
    cannot cross a process boundary, so when the caller supplies the
    right-hand side and the output block directly, the frequency blocks are
    shipped to the shared worker pool through shared memory
    (:func:`repro.parallel.freq.run_frequency_blocks`) instead of threads.
    Inside a pool worker — or when the sweep shape was not declared — the
    thread path runs as the fallback, so nesting never happens and results
    are bit-identical either way.
    """
    n_workers = min(solver.options.ac_workers, len(frequencies))
    if (n_workers > 1 and solver.options.ac_mode == "process"
            and rhs is not None and out is not None):
        from ..parallel.freq import run_frequency_blocks
        from ..parallel.pool import in_worker_process

        if not in_worker_process():
            run_frequency_blocks(pattern, frequencies, solver,
                                 rhs=rhs, out=out, multi_rhs=multi_rhs)
            return
    if n_workers <= 1:
        for index, frequency in enumerate(frequencies):
            per_point(solver, pattern.assemble(2j * np.pi * frequency), index)
        return

    from concurrent.futures import ThreadPoolExecutor

    chunks = np.array_split(np.arange(len(frequencies)), n_workers)

    def run_chunk(indices: np.ndarray) -> LinearSolver:
        worker = solver.spawn()
        private = pattern.with_private_buffer()
        for index in indices:
            matrix = private.assemble(2j * np.pi * frequencies[index])
            per_point(worker, matrix, int(index))
        return worker

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        for worker in pool.map(run_chunk, chunks):
            solver.absorb(worker)


def ac_analysis(circuit: Circuit, frequencies: np.ndarray | list[float],
                operating_point: DcSolution | None = None,
                dc_options: DcOptions | None = None,
                gmin: float = 1e-12,
                solver: SolverOptions | LinearSolver | None = None
                ) -> AcSolution:
    """Run an AC sweep over ``frequencies`` (hertz).

    If the circuit contains nonlinear devices and no ``operating_point`` is
    supplied, a DC operating point is solved first.  ``solver`` selects the
    linear-solver backend; ``solver.options.ac_workers`` shards the frequency
    points of this one sweep across worker threads (results are identical to
    the serial sweep).
    """
    circuit.validate()
    solver = resolve_solver(solver)
    frequencies = np.asarray(list(frequencies), dtype=float)
    if frequencies.size == 0:
        raise SimulationError("AC analysis needs at least one frequency point")
    if np.any(frequencies < 0):
        raise SimulationError("AC frequencies must be non-negative")

    structure = MnaStructure.from_circuit(circuit)
    if operating_point is None and circuit.nonlinear_elements():
        operating_point = dc_operating_point(circuit, dc_options,
                                             solver=solver)

    g_matrix, c_matrix = _small_signal_matrices(circuit, structure, operating_point)
    # gmin to ground on every node row keeps otherwise-floating nodes solvable.
    g_matrix = add_gmin_diagonal(g_matrix, structure.n_nodes,
                                 solver.options.effective_gmin(gmin))

    # G and C share one CSC sparsity pattern; each frequency point only
    # rewrites the .data array of the preallocated (G + j*omega*C) matrix.
    pattern = SharedPatternPair(g_matrix, c_matrix)
    rhs = _ac_rhs(circuit, structure)
    vectors = np.zeros((frequencies.size, structure.size), dtype=complex)

    def per_point(point_solver: LinearSolver, matrix, index: int) -> None:
        vectors[index] = point_solver.solve(matrix, rhs, structure=structure)

    run_frequency_points(pattern, frequencies, solver, per_point,
                         rhs=rhs, out=vectors)
    return AcSolution(circuit=circuit, structure=structure,
                      frequencies=frequencies, vectors=vectors)
