"""DC operating-point analysis (Newton-Raphson with a continuation ladder).

The operating point is the starting point of every impact simulation: the
small-signal parameters of the MOSFETs (gm, gds, gmb) and the varactor
capacitances — and therefore the sensitivity of the circuit to substrate
noise — are evaluated at the DC solution.

The solver uses plain Newton-Raphson backed by a two-rung continuation
(homotopy) ladder, so exotic corners degrade gracefully instead of raising
:class:`~repro.errors.ConvergenceError` at the first stumble:

1. **plain Newton** from a zero initial guess — converges in one iteration
   for linear circuits and a handful for the paper's testbenches;
2. **gmin stepping** — the solve is repeated with a large conductance from
   every node to ground (``gmin_start``), which makes the Jacobian strongly
   diagonally dominant, then the conductance is relaxed geometrically down
   to the target gmin, warm-starting each rung with the previous solution;
3. **source stepping** — the independent sources are ramped from zero in a
   few steps, using each converged solution as the next initial guess.

The strategy that finally converged is recorded on the
:class:`DcSolution` (``strategy``) and counted into
:class:`~repro.simulator.solver.SolverStats` (``dc_gmin_steps`` /
``dc_source_steps``), so campaign results can surface which corners only
converged via the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..netlist.circuit import Circuit
from ..netlist.devices import NonlinearElement
from ..netlist.elements import CurrentSource, VoltageSource
from .linalg import LinearSolver, SolverOptions, resolve_solver
from .mna import MatrixStamper, MnaStructure, SolutionView, stamp_linear_elements
from .solver import gmin_diagonal


@dataclass
class DcSolution:
    """Result of a DC operating-point analysis."""

    circuit: Circuit
    structure: MnaStructure
    vector: np.ndarray
    iterations: int
    #: how the solve converged: "newton" (plain), "gmin-stepping" or
    #: "source-stepping" — anything but "newton" is a graceful degradation
    strategy: str = "newton"

    def voltage(self, node: str) -> float:
        return float(SolutionView(self.structure, self.vector).voltage(node))

    def voltages(self) -> dict[str, float]:
        return {k: float(v)
                for k, v in SolutionView(self.structure, self.vector).voltages().items()}

    def branch_current(self, branch: str) -> float:
        return float(SolutionView(self.structure, self.vector).branch_current(branch))

    def operating_point_of(self, element_name: str):
        """Operating point of a nonlinear element (e.g. a MOSFET) at the DC solution."""
        element = self.circuit[element_name]
        if not isinstance(element, NonlinearElement):
            raise ConvergenceError(f"{element_name!r} is not a nonlinear element")
        return element.operating_point(self.voltages())


@dataclass
class DcOptions:
    """Newton iteration controls."""

    max_iterations: int = 150
    abs_tolerance: float = 1e-9     #: volts
    rel_tolerance: float = 1e-6
    damping: float = 1.0            #: Newton step scaling (1.0 = full step)
    source_steps: int = 8           #: ramp steps used by the source-stepping fallback
    gmin: float = 1e-12             #: conductance added from every node to ground
    gmin_steps: int = 6             #: rungs of the gmin-stepping continuation ladder
    gmin_start: float = 1e-3        #: starting (heavily regularised) ladder gmin


def _fill_source_rhs(stamper: MatrixStamper, circuit: Circuit,
                     scale: float = 1.0) -> None:
    """Overwrite the RHS with the (possibly scaled) DC source values."""
    stamper.rhs[:] = 0.0
    for element in circuit.sources():
        if isinstance(element, VoltageSource):
            row = stamper.structure.branch_row(element.name)
            stamper.rhs[row] = scale * element.value.dc
        elif isinstance(element, CurrentSource):
            value = scale * element.value.dc
            row_p = stamper.structure.node_row(element.node_p)
            row_n = stamper.structure.node_row(element.node_n)
            if row_p is not None:
                stamper.rhs[row_p] -= value
            if row_n is not None:
                stamper.rhs[row_n] += value


def _newton_solve(circuit: Circuit, structure: MnaStructure,
                  linear: MatrixStamper, options: DcOptions,
                  initial: np.ndarray, source_scale: float,
                  solver: LinearSolver,
                  gmin_diag) -> tuple[np.ndarray, int]:
    """Newton iteration at a fixed source scaling; returns (solution, iterations)."""
    x = initial.copy()
    nonlinear = circuit.nonlinear_elements()
    n_nodes = structure.n_nodes

    for iteration in range(1, options.max_iterations + 1):
        stamper = linear.copy()
        _fill_source_rhs(stamper, circuit, scale=source_scale)
        voltages = {name: float(x[row])
                    for name, row in structure.node_index.items()}
        for element in nonlinear:
            element.stamp_companion(stamper, voltages)
        # gmin from every node to ground keeps floating nodes solvable; the
        # diagonal is built once per analysis, so every iteration pays one
        # CSR addition instead of a format conversion.
        matrix = stamper.conductance_matrix()
        if gmin_diag is not None:
            matrix = matrix + gmin_diag
        x_new = solver.solve(matrix, stamper.rhs, structure=structure)
        delta = x_new - x
        x = x + options.damping * delta
        max_delta = float(np.max(np.abs(delta[:n_nodes]))) if n_nodes else 0.0
        max_value = float(np.max(np.abs(x[:n_nodes]))) if n_nodes else 0.0
        if max_delta <= options.abs_tolerance + options.rel_tolerance * max_value:
            return x, iteration
    raise ConvergenceError(
        f"DC Newton did not converge in {options.max_iterations} iterations "
        f"(last max voltage update {max_delta:.3e} V)")


def _gmin_ladder(start: float, target: float, steps: int) -> list[float]:
    """Decreasing intermediate gmin rungs from ``start`` down to ``target``.

    The returned rungs exclude the target itself (the final solve always
    runs at the analysis gmin, so a ladder-converged solution satisfies the
    exact same system as a plain-Newton one).  A non-positive target relaxes
    toward a tiny positive floor instead — the final unregularised solve
    still runs afterwards.
    """
    if steps < 1 or start <= 0.0:
        return []
    floor = target if target > 0.0 else 1e-15
    if start <= floor:
        return [start]
    return [float(g) for g in np.geomspace(start, floor, steps + 1)[:-1]]


def dc_operating_point(circuit: Circuit, options: DcOptions | None = None,
                       solver: SolverOptions | LinearSolver | None = None
                       ) -> DcSolution:
    """Solve the DC operating point of ``circuit``.

    Linear circuits converge in a single iteration.  For nonlinear circuits,
    plain Newton is attempted first; on failure the continuation ladder runs
    gmin stepping (``options.gmin_steps`` rungs from ``options.gmin_start``
    down to the analysis gmin) and then source stepping
    (``options.source_steps`` ramp steps).  The winning strategy is recorded
    on the returned :class:`DcSolution` and the ladder rungs are counted
    into the solver's :class:`~repro.simulator.solver.SolverStats`.
    ``solver`` selects the linear-solver backend (options or a shared
    instance); the reuse-pattern backend refactorizes values only across the
    Newton iterations, which all share one sparsity pattern.
    """
    options = options or DcOptions()
    solver = resolve_solver(solver)
    circuit.validate()
    structure = MnaStructure.from_circuit(circuit)
    linear = stamp_linear_elements(circuit, structure)
    initial = np.zeros(structure.size)
    target_gmin = solver.options.effective_gmin(options.gmin)
    gmin_diag = gmin_diagonal(structure.size, structure.n_nodes, target_gmin)

    def newton(guess, scale, diag):
        return _newton_solve(circuit, structure, linear, options, guess,
                             source_scale=scale, solver=solver,
                             gmin_diag=diag)

    try:
        vector, iterations = newton(initial, 1.0, gmin_diag)
        return DcSolution(circuit=circuit, structure=structure,
                          vector=vector, iterations=iterations,
                          strategy="newton")
    except ConvergenceError:
        pass

    # Rung 1: gmin-stepping homotopy.  A large gmin makes the Jacobian
    # strongly diagonally dominant (every rung converges easily), and each
    # solution warm-starts the next, slightly less regularised, rung.  The
    # final solve runs at the true analysis gmin, so the returned operating
    # point solves the identical system a plain Newton solve would have.
    ladder = _gmin_ladder(options.gmin_start, target_gmin, options.gmin_steps)
    if ladder:
        try:
            vector = initial
            total_iterations = 0
            for rung_gmin in ladder:
                rung_diag = gmin_diagonal(structure.size, structure.n_nodes,
                                          rung_gmin)
                vector, iterations = newton(vector, 1.0, rung_diag)
                total_iterations += iterations
                solver._bump("dc_gmin_steps")
            vector, iterations = newton(vector, 1.0, gmin_diag)
            total_iterations += iterations
            return DcSolution(circuit=circuit, structure=structure,
                              vector=vector, iterations=total_iterations,
                              strategy="gmin-stepping")
        except ConvergenceError:
            pass

    # Rung 2: source-stepping homotopy — ramp the independent sources from
    # zero, warm-starting each step with the previous solution.
    try:
        vector = initial
        total_iterations = 0
        for step in range(1, options.source_steps + 1):
            scale = step / options.source_steps
            vector, iterations = newton(vector, scale, gmin_diag)
            total_iterations += iterations
            solver._bump("dc_source_steps")
        return DcSolution(circuit=circuit, structure=structure,
                          vector=vector, iterations=total_iterations,
                          strategy="source-stepping")
    except ConvergenceError as exc:
        raise ConvergenceError(
            "DC operating point did not converge: plain Newton, "
            f"{len(ladder)}-rung gmin stepping and "
            f"{options.source_steps}-step source stepping all failed "
            f"(last failure: {exc})") from exc
