"""DC operating-point analysis (Newton-Raphson).

The operating point is the starting point of every impact simulation: the
small-signal parameters of the MOSFETs (gm, gds, gmb) and the varactor
capacitances — and therefore the sensitivity of the circuit to substrate
noise — are evaluated at the DC solution.

The solver uses plain Newton-Raphson with source stepping as a fallback:
if the full-source solve fails to converge, the independent sources are
ramped from zero in a few steps, using each converged solution as the next
initial guess.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..netlist.circuit import Circuit
from ..netlist.devices import NonlinearElement
from ..netlist.elements import CurrentSource, VoltageSource
from .linalg import LinearSolver, SolverOptions, resolve_solver
from .mna import MatrixStamper, MnaStructure, SolutionView, stamp_linear_elements
from .solver import gmin_diagonal


@dataclass
class DcSolution:
    """Result of a DC operating-point analysis."""

    circuit: Circuit
    structure: MnaStructure
    vector: np.ndarray
    iterations: int

    def voltage(self, node: str) -> float:
        return float(SolutionView(self.structure, self.vector).voltage(node))

    def voltages(self) -> dict[str, float]:
        return {k: float(v)
                for k, v in SolutionView(self.structure, self.vector).voltages().items()}

    def branch_current(self, branch: str) -> float:
        return float(SolutionView(self.structure, self.vector).branch_current(branch))

    def operating_point_of(self, element_name: str):
        """Operating point of a nonlinear element (e.g. a MOSFET) at the DC solution."""
        element = self.circuit[element_name]
        if not isinstance(element, NonlinearElement):
            raise ConvergenceError(f"{element_name!r} is not a nonlinear element")
        return element.operating_point(self.voltages())


@dataclass
class DcOptions:
    """Newton iteration controls."""

    max_iterations: int = 150
    abs_tolerance: float = 1e-9     #: volts
    rel_tolerance: float = 1e-6
    damping: float = 1.0            #: Newton step scaling (1.0 = full step)
    source_steps: int = 8           #: ramp steps used by the source-stepping fallback
    gmin: float = 1e-12             #: conductance added from every node to ground


def _fill_source_rhs(stamper: MatrixStamper, circuit: Circuit,
                     scale: float = 1.0) -> None:
    """Overwrite the RHS with the (possibly scaled) DC source values."""
    stamper.rhs[:] = 0.0
    for element in circuit.sources():
        if isinstance(element, VoltageSource):
            row = stamper.structure.branch_row(element.name)
            stamper.rhs[row] = scale * element.value.dc
        elif isinstance(element, CurrentSource):
            value = scale * element.value.dc
            row_p = stamper.structure.node_row(element.node_p)
            row_n = stamper.structure.node_row(element.node_n)
            if row_p is not None:
                stamper.rhs[row_p] -= value
            if row_n is not None:
                stamper.rhs[row_n] += value


def _newton_solve(circuit: Circuit, structure: MnaStructure,
                  linear: MatrixStamper, options: DcOptions,
                  initial: np.ndarray, source_scale: float,
                  solver: LinearSolver,
                  gmin_diag) -> tuple[np.ndarray, int]:
    """Newton iteration at a fixed source scaling; returns (solution, iterations)."""
    x = initial.copy()
    nonlinear = circuit.nonlinear_elements()
    n_nodes = structure.n_nodes

    for iteration in range(1, options.max_iterations + 1):
        stamper = linear.copy()
        _fill_source_rhs(stamper, circuit, scale=source_scale)
        voltages = {name: float(x[row])
                    for name, row in structure.node_index.items()}
        for element in nonlinear:
            element.stamp_companion(stamper, voltages)
        # gmin from every node to ground keeps floating nodes solvable; the
        # diagonal is built once per analysis, so every iteration pays one
        # CSR addition instead of a format conversion.
        matrix = stamper.conductance_matrix()
        if gmin_diag is not None:
            matrix = matrix + gmin_diag
        x_new = solver.solve(matrix, stamper.rhs, structure=structure)
        delta = x_new - x
        x = x + options.damping * delta
        max_delta = float(np.max(np.abs(delta[:n_nodes]))) if n_nodes else 0.0
        max_value = float(np.max(np.abs(x[:n_nodes]))) if n_nodes else 0.0
        if max_delta <= options.abs_tolerance + options.rel_tolerance * max_value:
            return x, iteration
    raise ConvergenceError(
        f"DC Newton did not converge in {options.max_iterations} iterations "
        f"(last max voltage update {max_delta:.3e} V)")


def dc_operating_point(circuit: Circuit, options: DcOptions | None = None,
                       solver: SolverOptions | LinearSolver | None = None
                       ) -> DcSolution:
    """Solve the DC operating point of ``circuit``.

    Linear circuits converge in a single iteration.  For nonlinear circuits,
    plain Newton is attempted first; on failure the independent sources are
    ramped up in ``options.source_steps`` steps (source stepping).
    ``solver`` selects the linear-solver backend (options or a shared
    instance); the reuse-pattern backend refactorizes values only across the
    Newton iterations, which all share one sparsity pattern.
    """
    options = options or DcOptions()
    solver = resolve_solver(solver)
    circuit.validate()
    structure = MnaStructure.from_circuit(circuit)
    linear = stamp_linear_elements(circuit, structure)
    initial = np.zeros(structure.size)
    gmin_diag = gmin_diagonal(structure.size, structure.n_nodes,
                              solver.options.effective_gmin(options.gmin))

    try:
        vector, iterations = _newton_solve(circuit, structure, linear, options,
                                           initial, source_scale=1.0,
                                           solver=solver, gmin_diag=gmin_diag)
        return DcSolution(circuit=circuit, structure=structure,
                          vector=vector, iterations=iterations)
    except ConvergenceError:
        pass

    # Source stepping fallback.
    vector = initial
    total_iterations = 0
    for step in range(1, options.source_steps + 1):
        scale = step / options.source_steps
        vector, iterations = _newton_solve(circuit, structure, linear, options,
                                           vector, source_scale=scale,
                                           solver=solver, gmin_diag=gmin_diag)
        total_iterations += iterations
    return DcSolution(circuit=circuit, structure=structure,
                      vector=vector, iterations=total_iterations)
