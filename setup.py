"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on minimal offline environments where
the ``wheel`` package (needed for PEP 660 editable wheels) is unavailable and
pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Substrate noise impact simulation methodology for analog/RF circuits "
        "including interconnect resistance (reproduction of Soens et al., DATE 2005)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.studies.cli:main",
        ],
    },
)
